#include "nn/graph_conv.hpp"

#include "nn/init.hpp"
#include "test_util.hpp"

namespace magic::testing {
namespace {

using tensor::SparseMatrix;

SparseMatrix chain_prop() {
  // 0 -> 1 -> 2 plus a back edge 2 -> 0.
  return SparseMatrix::propagation_operator({{1}, {2}, {0}});
}

TEST(GraphConvLayer, ForwardMatchesDenseFormula) {
  // Z' = f(D^-1 A_hat Z W) with Identity activation equals the dense chain.
  util::Rng rng(1);
  nn::GraphConvLayer layer(2, 3, nn::Activation::Identity, rng);
  SparseMatrix p = chain_prop();
  Tensor z = Tensor::from_rows({{1, 2}, {3, 4}, {5, 6}});
  Tensor expected = tensor::matmul(p.to_dense(), tensor::matmul(z, layer.weight().value));
  EXPECT_TRUE(tensor::allclose(layer.forward(p, z), expected, 1e-12));
}

TEST(GraphConvLayer, ReluActivationClamps) {
  util::Rng rng(2);
  nn::GraphConvLayer layer(1, 1, nn::Activation::ReLU, rng);
  layer.weight().value = Tensor::from_rows({{-1.0}});
  SparseMatrix p = SparseMatrix::propagation_operator({{}});
  Tensor z = Tensor::from_rows({{2.0}});
  // preact = 1 * (2 * -1) = -2 -> relu -> 0.
  EXPECT_EQ(layer.forward(p, z)[0], 0.0);
}

TEST(GraphConvLayer, PaperEquationOneWorkedExample) {
  // Mirrors the style of the paper's Fig. 3 walk-through: a 5-vertex graph
  // with 2 attribute channels, one conv layer with a fixed W and ReLU.
  // Graph edges: 0->1, 0->2, 1->3, 2->3, 3->4.
  std::vector<std::vector<std::size_t>> adj = {{1, 2}, {3}, {3}, {4}, {}};
  SparseMatrix p = SparseMatrix::propagation_operator(adj);
  util::Rng rng(3);
  nn::GraphConvLayer layer(2, 3, nn::Activation::ReLU, rng);
  layer.weight().value = Tensor::from_rows({{1, 0, 1}, {0, 1, 0}});  // W1 of Fig. 3
  Tensor x = Tensor::from_rows({{2, 1}, {0, 3}, {1, 1}, {4, 0}, {1, 2}});
  Tensor out = layer.forward(p, x);
  // Hand-computed: F = X W = [[2,1,2],[0,3,0],[1,1,1],[4,0,4],[1,2,1]];
  // row 0 of P = 1/3 (self + v1 + v2): (2+0+1)/3 = 1, (1+3+1)/3 = 5/3, ...
  EXPECT_NEAR(out.at(0, 0), 1.0, 1e-12);
  EXPECT_NEAR(out.at(0, 1), 5.0 / 3.0, 1e-12);
  EXPECT_NEAR(out.at(0, 2), 1.0, 1e-12);
  // row 4 (sink): deg_hat = 1 -> its own features only.
  EXPECT_NEAR(out.at(4, 0), 1.0, 1e-12);
  EXPECT_NEAR(out.at(4, 1), 2.0, 1e-12);
}

TEST(GraphConvLayer, GradientsMatchNumericTanh) {
  util::Rng rng(4);
  nn::GraphConvLayer layer(3, 2, nn::Activation::Tanh, rng);
  SparseMatrix p = chain_prop();
  Tensor z = Tensor::uniform({3, 3}, rng, -1, 1);

  const Tensor probe = layer.forward(p, z);
  Tensor w = Tensor::uniform(probe.shape(), rng, -1, 1);
  auto loss = [&](const Tensor& input) {
    Tensor out = layer.forward(p, input);
    double total = 0.0;
    for (std::size_t i = 0; i < out.size(); ++i) total += w[i] * out[i];
    return total;
  };
  layer.weight().zero_grad();
  layer.forward(p, z);
  Tensor analytic_in = layer.backward(w);
  Tensor numeric_in = numeric_grad(loss, z);
  for (std::size_t i = 0; i < analytic_in.size(); ++i) {
    EXPECT_NEAR(analytic_in[i], numeric_in[i], 1e-6);
  }
  auto loss_w = [&](const Tensor& wv) {
    const Tensor saved = layer.weight().value;
    layer.weight().value = wv;
    const double l = loss(z);
    layer.weight().value = saved;
    return l;
  };
  Tensor numeric_w = numeric_grad(loss_w, layer.weight().value);
  for (std::size_t i = 0; i < numeric_w.size(); ++i) {
    EXPECT_NEAR(layer.weight().grad[i], numeric_w[i], 1e-6);
  }
}

TEST(GraphConvLayer, RejectsChannelMismatch) {
  util::Rng rng(5);
  nn::GraphConvLayer layer(2, 2, nn::Activation::ReLU, rng);
  SparseMatrix p = chain_prop();
  EXPECT_THROW(layer.forward(p, Tensor::zeros({3, 5})), std::invalid_argument);
}

TEST(GraphConvLayer, BackwardBeforeForwardThrows) {
  util::Rng rng(6);
  nn::GraphConvLayer layer(2, 2, nn::Activation::ReLU, rng);
  EXPECT_THROW(layer.backward(Tensor::zeros({3, 2})), std::logic_error);
}

TEST(GraphConvStack, ConcatHasAllLayerChannels) {
  util::Rng rng(7);
  nn::GraphConvStack stack(11, {32, 16, 8}, nn::Activation::Tanh, rng);
  EXPECT_EQ(stack.total_channels(), 56u);
  EXPECT_EQ(stack.depth(), 3u);
  SparseMatrix p = chain_prop();
  Tensor x = Tensor::uniform({3, 11}, rng, 0, 1);
  Tensor z = stack.forward(p, x);
  EXPECT_EQ(z.dim(0), 3u);
  EXPECT_EQ(z.dim(1), 56u);
}

TEST(GraphConvStack, GradientsMatchNumeric) {
  util::Rng rng(8);
  nn::GraphConvStack stack(2, {3, 2}, nn::Activation::Tanh, rng);
  SparseMatrix p = chain_prop();
  Tensor x = Tensor::uniform({3, 2}, rng, -1, 1);

  const Tensor probe = stack.forward(p, x);
  Tensor w = Tensor::uniform(probe.shape(), rng, -1, 1);
  auto loss = [&](const Tensor& input) {
    Tensor out = stack.forward(p, input);
    double total = 0.0;
    for (std::size_t i = 0; i < out.size(); ++i) total += w[i] * out[i];
    return total;
  };
  for (auto* param : stack.parameters()) param->zero_grad();
  stack.forward(p, x);
  Tensor analytic_in = stack.backward(w);
  Tensor numeric_in = numeric_grad(loss, x);
  for (std::size_t i = 0; i < analytic_in.size(); ++i) {
    EXPECT_NEAR(analytic_in[i], numeric_in[i], 1e-6) << "dX at " << i;
  }
  for (auto* param : stack.parameters()) {
    auto loss_p = [&](const Tensor& v) {
      const Tensor saved = param->value;
      param->value = v;
      const double l = loss(x);
      param->value = saved;
      return l;
    };
    Tensor numeric_p = numeric_grad(loss_p, param->value);
    for (std::size_t i = 0; i < numeric_p.size(); ++i) {
      EXPECT_NEAR(param->grad[i], numeric_p[i], 1e-6) << param->name << " at " << i;
    }
  }
}

TEST(GraphConvStack, RejectsEmptyChannels) {
  util::Rng rng(9);
  EXPECT_THROW(nn::GraphConvStack(2, {}, nn::Activation::ReLU, rng),
               std::invalid_argument);
}

TEST(GraphConvOps, FactoryBuildsEveryOperatorWithDistinctWeightNames) {
  util::Rng rng(20);
  nn::GraphConvOpOptions opt;
  auto paper = nn::make_graph_conv_op(opt, 3, 4, nn::Activation::ReLU, rng);
  opt.kind = nn::GraphConvOperator::Sage;
  auto sage = nn::make_graph_conv_op(opt, 3, 4, nn::Activation::ReLU, rng);
  opt.kind = nn::GraphConvOperator::Tag;
  opt.tag_hops = 3;
  auto tag = nn::make_graph_conv_op(opt, 3, 4, nn::Activation::ReLU, rng);

  EXPECT_EQ(paper->kind(), nn::GraphConvOperator::Paper);
  EXPECT_EQ(sage->kind(), nn::GraphConvOperator::Sage);
  EXPECT_EQ(tag->kind(), nn::GraphConvOperator::Tag);
  // Operator-specific weight names are the checkpoint cross-load guard.
  EXPECT_EQ(paper->weight().name, "graph_conv.weight");
  EXPECT_EQ(sage->weight().name, "sage_conv.weight");
  EXPECT_EQ(tag->weight().name, "tag_conv.weight");
  // Wider operators widen the weight, not the output.
  EXPECT_EQ(paper->weight().value.dim(0), 3u);
  EXPECT_EQ(sage->weight().value.dim(0), 6u);
  EXPECT_EQ(tag->weight().value.dim(0), 12u);
  for (const auto* op : {paper.get(), sage.get(), tag.get()}) {
    EXPECT_EQ(op->out_channels(), 4u);
    EXPECT_EQ(op->weight().value.dim(1), 4u);
  }
}

TEST(GraphConvOps, OperatorNamesRoundTrip) {
  for (auto kind : {nn::GraphConvOperator::Paper, nn::GraphConvOperator::Sage,
                    nn::GraphConvOperator::Tag}) {
    EXPECT_EQ(nn::parse_graph_conv_operator(nn::graph_conv_operator_name(kind)),
              kind);
  }
  EXPECT_THROW(nn::parse_graph_conv_operator("gat"), std::runtime_error);
}

TEST(GraphConvOps, TagRejectsZeroHops) {
  util::Rng rng(21);
  EXPECT_THROW(nn::TagConv(2, 2, 0, nn::Activation::ReLU, rng),
               std::invalid_argument);
}

TEST(GraphConvOps, SageForwardMatchesDenseFormula) {
  // Y = [Z | P Z] W with Identity activation, computed densely.
  util::Rng rng(22);
  nn::SageConv layer(2, 3, nn::Activation::Identity, rng);
  SparseMatrix p = chain_prop();
  Tensor z = Tensor::from_rows({{1, 2}, {3, 4}, {5, 6}});
  Tensor pz = tensor::matmul(p.to_dense(), z);
  Tensor h = tensor::concat_cols({z, pz});
  Tensor expected = tensor::matmul(h, layer.weight().value);
  EXPECT_TRUE(tensor::allclose(layer.forward(p, z), expected, 1e-12));
}

TEST(GraphConvOps, TagForwardMatchesDenseFormula) {
  // Y = [Z | P Z | P^2 Z] W with Identity activation, computed densely.
  util::Rng rng(23);
  nn::TagConv layer(2, 3, /*hops=*/2, nn::Activation::Identity, rng);
  SparseMatrix p = chain_prop();
  Tensor z = Tensor::from_rows({{1, 2}, {3, 4}, {5, 6}});
  Tensor pd = p.to_dense();
  Tensor pz = tensor::matmul(pd, z);
  Tensor ppz = tensor::matmul(pd, pz);
  Tensor h = tensor::concat_cols({z, pz, ppz});
  Tensor expected = tensor::matmul(h, layer.weight().value);
  EXPECT_TRUE(tensor::allclose(layer.forward(p, z), expected, 1e-12));
}

/// Shared numeric gradcheck over any operator (mirrors the GraphConvLayer
/// Tanh gradcheck above).
void gradcheck_operator(nn::GraphConvOp& layer, std::size_t in_channels,
                        std::uint64_t seed) {
  util::Rng rng(seed);
  SparseMatrix p = chain_prop();
  Tensor z = Tensor::uniform({3, in_channels}, rng, -1, 1);
  const Tensor probe = layer.forward(p, z);
  Tensor w = Tensor::uniform(probe.shape(), rng, -1, 1);
  auto loss = [&](const Tensor& input) {
    Tensor out = layer.forward(p, input);
    double total = 0.0;
    for (std::size_t i = 0; i < out.size(); ++i) total += w[i] * out[i];
    return total;
  };
  layer.weight().zero_grad();
  layer.forward(p, z);
  Tensor analytic_in = layer.backward(w);
  Tensor numeric_in = numeric_grad(loss, z);
  for (std::size_t i = 0; i < analytic_in.size(); ++i) {
    EXPECT_NEAR(analytic_in[i], numeric_in[i], 1e-6) << "dZ at " << i;
  }
  auto loss_w = [&](const Tensor& wv) {
    const Tensor saved = layer.weight().value;
    layer.weight().value = wv;
    const double l = loss(z);
    layer.weight().value = saved;
    return l;
  };
  Tensor numeric_w = numeric_grad(loss_w, layer.weight().value);
  for (std::size_t i = 0; i < numeric_w.size(); ++i) {
    EXPECT_NEAR(layer.weight().grad[i], numeric_w[i], 1e-6) << "dW at " << i;
  }
}

TEST(GraphConvOps, SageGradientsMatchNumericTanh) {
  util::Rng rng(24);
  nn::SageConv layer(3, 2, nn::Activation::Tanh, rng);
  gradcheck_operator(layer, 3, 25);
}

TEST(GraphConvOps, TagGradientsMatchNumericTanh) {
  util::Rng rng(26);
  nn::TagConv layer(3, 2, /*hops=*/3, nn::Activation::Tanh, rng);
  gradcheck_operator(layer, 3, 27);
}

TEST(GraphConvOps, BackwardBeforeForwardThrowsForEveryOperator) {
  util::Rng rng(28);
  nn::GraphConvOpOptions opt;
  for (auto kind : {nn::GraphConvOperator::Paper, nn::GraphConvOperator::Sage,
                    nn::GraphConvOperator::Tag}) {
    opt.kind = kind;
    auto op = nn::make_graph_conv_op(opt, 2, 2, nn::Activation::ReLU, rng);
    EXPECT_THROW(op->backward(Tensor::zeros({3, 2})), std::logic_error);
  }
}

TEST(GraphConvStack, ConfigCtorCarriesOperator) {
  util::Rng rng(29);
  nn::GraphConvStackConfig config;
  config.in_channels = 4;
  config.channels = {8, 6};
  config.activation = nn::Activation::Tanh;
  config.op.kind = nn::GraphConvOperator::Tag;
  config.op.tag_hops = 3;
  nn::GraphConvStack stack(config, rng);
  EXPECT_EQ(stack.op_kind(), nn::GraphConvOperator::Tag);
  EXPECT_EQ(stack.op_options().tag_hops, 3u);
  EXPECT_EQ(stack.depth(), 2u);
  // Output width is the configured channel sum regardless of operator.
  EXPECT_EQ(stack.total_channels(), 14u);
  SparseMatrix p = chain_prop();
  Tensor z = stack.forward(p, Tensor::uniform({3, 4}, rng, -1, 1));
  EXPECT_EQ(z.dim(1), 14u);
}

TEST(GraphConvStack, LegacyCtorIsPaperOperator) {
  util::Rng rng(30);
  nn::GraphConvStack stack(2, {3}, nn::Activation::ReLU, rng);
  EXPECT_EQ(stack.op_kind(), nn::GraphConvOperator::Paper);
}

TEST(GraphConvStack, GradientsMatchNumericForSageAndTag) {
  for (auto kind : {nn::GraphConvOperator::Sage, nn::GraphConvOperator::Tag}) {
    util::Rng rng(31);
    nn::GraphConvStackConfig config;
    config.in_channels = 2;
    config.channels = {3, 2};
    config.activation = nn::Activation::Tanh;
    config.op.kind = kind;
    config.op.tag_hops = 2;
    nn::GraphConvStack stack(config, rng);
    SparseMatrix p = chain_prop();
    Tensor x = Tensor::uniform({3, 2}, rng, -1, 1);
    const Tensor probe = stack.forward(p, x);
    Tensor w = Tensor::uniform(probe.shape(), rng, -1, 1);
    auto loss = [&](const Tensor& input) {
      Tensor out = stack.forward(p, input);
      double total = 0.0;
      for (std::size_t i = 0; i < out.size(); ++i) total += w[i] * out[i];
      return total;
    };
    for (auto* param : stack.parameters()) param->zero_grad();
    stack.forward(p, x);
    Tensor analytic_in = stack.backward(w);
    Tensor numeric_in = numeric_grad(loss, x);
    for (std::size_t i = 0; i < analytic_in.size(); ++i) {
      EXPECT_NEAR(analytic_in[i], numeric_in[i], 1e-6)
          << nn::graph_conv_operator_name(kind) << " dX at " << i;
    }
    for (auto* param : stack.parameters()) {
      auto loss_p = [&](const Tensor& v) {
        const Tensor saved = param->value;
        param->value = v;
        const double l = loss(x);
        param->value = saved;
        return l;
      };
      Tensor numeric_p = numeric_grad(loss_p, param->value);
      for (std::size_t i = 0; i < numeric_p.size(); ++i) {
        EXPECT_NEAR(param->grad[i], numeric_p[i], 1e-6)
            << param->name << " at " << i;
      }
    }
  }
}

TEST(GraphConvStack, InferencePathBitIdenticalToTrainingPathPerOperator) {
  // The fused forward_inference_into path must be bitwise equal to the
  // training-mode forward for every zoo member (same kernels, same order).
  for (auto kind : {nn::GraphConvOperator::Paper, nn::GraphConvOperator::Sage,
                    nn::GraphConvOperator::Tag}) {
    util::Rng rng(32);
    nn::GraphConvStackConfig config;
    config.in_channels = 5;
    config.channels = {7, 4, 3};
    config.op.kind = kind;
    nn::GraphConvStack stack(config, rng);
    std::vector<std::vector<std::size_t>> adj = {{1, 2}, {3}, {3}, {4}, {0}};
    SparseMatrix p = SparseMatrix::propagation_operator(adj);
    Tensor x = Tensor::uniform({5, 5}, rng, -1, 1);
    Tensor trained = stack.forward(p, x);
    stack.set_grad_enabled(false);
    Tensor inferred = stack.forward(p, x);
    ASSERT_TRUE(trained.same_shape(inferred));
    for (std::size_t i = 0; i < trained.size(); ++i) {
      EXPECT_EQ(trained[i], inferred[i])
          << nn::graph_conv_operator_name(kind) << " at " << i;
    }
  }
}

// ---- Golden pin: PaperGraphConv is bitwise the pre-zoo GraphConvLayer ----
//
// Reference re-implementation of the pre-refactor stack, inline: xavier
// init in the same declaration order, then per layer GEMM(Z W) ->
// SpMM(P F) -> activation, concat at the end; backward is the textbook
// reverse with the same kernel calls. Any reordering or kernel change in
// PaperGraphConv breaks EXPECT_EQ here.

struct GoldenLayer {
  Tensor weight;
  Tensor grad;
  Tensor cached_input;
  Tensor cached_preact;
};

Tensor golden_forward(std::vector<GoldenLayer>& layers, const SparseMatrix& p,
                      const Tensor& x, nn::Activation act,
                      std::vector<Tensor>& outputs) {
  outputs.clear();
  Tensor z = x;
  for (auto& layer : layers) {
    layer.cached_input = z;
    Tensor f = tensor::matmul(z, layer.weight);
    layer.cached_preact = p.multiply(f);
    z = layer.cached_preact;
    nn::apply_activation(act, z.data(), z.size());
    outputs.push_back(z);
  }
  return tensor::concat_cols(outputs);
}

Tensor golden_backward(std::vector<GoldenLayer>& layers, const SparseMatrix& p,
                       const Tensor& grad_concat, nn::Activation act,
                       std::size_t n) {
  std::vector<Tensor> slices;
  std::size_t total = 0;
  for (const auto& layer : layers) total += layer.weight.dim(1);
  std::size_t offset = 0;
  for (const auto& layer : layers) {
    const std::size_t c = layer.weight.dim(1);
    Tensor g({n, c});
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < c; ++j) {
        g[i * c + j] = grad_concat[i * total + offset + j];
      }
    }
    slices.push_back(std::move(g));
    offset += c;
  }
  Tensor g = slices.back();
  for (std::size_t t = layers.size(); t-- > 0;) {
    Tensor ds = g;
    nn::apply_activation_grad(act, ds.data(), layers[t].cached_preact.data(),
                              ds.size());
    Tensor df = p.multiply_transposed(ds);
    layers[t].grad = tensor::matmul_tn(layers[t].cached_input, df);
    Tensor gin = tensor::matmul_nt(df, layers[t].weight);
    if (t > 0) {
      g = slices[t - 1];
      g += gin;
    } else {
      g = gin;
    }
  }
  return g;
}

TEST(GraphConvGolden, PaperOperatorBitIdenticalToPreRefactorStack) {
  const nn::Activation act = nn::Activation::ReLU;
  const std::size_t in = 6;
  const std::vector<std::size_t> channels = {8, 5, 4};

  // Both sides consume the same Rng stream in the same order.
  util::Rng stack_rng(97);
  nn::GraphConvStack stack(in, channels, act, stack_rng);
  util::Rng golden_rng(97);
  std::vector<GoldenLayer> golden;
  std::size_t prev = in;
  for (std::size_t c : channels) {
    GoldenLayer layer;
    layer.weight = nn::xavier_uniform({prev, c}, prev, c, golden_rng);
    golden.push_back(std::move(layer));
    prev = c;
  }
  for (std::size_t t = 0; t < channels.size(); ++t) {
    const Tensor& w = stack.parameters()[t]->value;
    ASSERT_TRUE(w.same_shape(golden[t].weight));
    for (std::size_t i = 0; i < w.size(); ++i) {
      ASSERT_EQ(w[i], golden[t].weight[i]) << "init layer " << t << " at " << i;
    }
  }

  std::vector<std::vector<std::size_t>> adj = {{1, 2}, {3}, {3, 0}, {4}, {1}};
  SparseMatrix p = SparseMatrix::propagation_operator(adj);
  util::Rng data_rng(5);
  Tensor x = Tensor::uniform({5, in}, data_rng, -2, 2);

  std::vector<Tensor> outputs;
  Tensor expected = golden_forward(golden, p, x, act, outputs);
  Tensor actual = stack.forward(p, x);
  ASSERT_TRUE(actual.same_shape(expected));
  for (std::size_t i = 0; i < actual.size(); ++i) {
    EXPECT_EQ(actual[i], expected[i]) << "forward at " << i;
  }

  Tensor grad = Tensor::uniform(expected.shape(), data_rng, -1, 1);
  Tensor expected_dx = golden_backward(golden, p, grad, act, 5);
  for (auto* param : stack.parameters()) param->zero_grad();
  Tensor actual_dx = stack.backward(grad);
  ASSERT_TRUE(actual_dx.same_shape(expected_dx));
  for (std::size_t i = 0; i < actual_dx.size(); ++i) {
    EXPECT_EQ(actual_dx[i], expected_dx[i]) << "dX at " << i;
  }
  for (std::size_t t = 0; t < channels.size(); ++t) {
    const Tensor& dw = stack.parameters()[t]->grad;
    ASSERT_TRUE(dw.same_shape(golden[t].grad));
    for (std::size_t i = 0; i < dw.size(); ++i) {
      EXPECT_EQ(dw[i], golden[t].grad[i]) << "dW layer " << t << " at " << i;
    }
  }
}

TEST(GraphConvStack, IsolatedVerticesKeepOwnFeatures) {
  // With no edges, propagation is identity; one Identity-activation layer
  // reduces to Z W exactly.
  util::Rng rng(10);
  nn::GraphConvStack stack(2, {2}, nn::Activation::Identity, rng);
  SparseMatrix p = SparseMatrix::propagation_operator({{}, {}, {}});
  Tensor x = Tensor::uniform({3, 2}, rng, -1, 1);
  Tensor expected = tensor::matmul(x, stack.parameters()[0]->value);
  EXPECT_TRUE(tensor::allclose(stack.forward(p, x), expected, 1e-12));
}

}  // namespace
}  // namespace magic::testing
