#include "nn/graph_conv.hpp"

#include "test_util.hpp"

namespace magic::testing {
namespace {

using tensor::SparseMatrix;

SparseMatrix chain_prop() {
  // 0 -> 1 -> 2 plus a back edge 2 -> 0.
  return SparseMatrix::propagation_operator({{1}, {2}, {0}});
}

TEST(GraphConvLayer, ForwardMatchesDenseFormula) {
  // Z' = f(D^-1 A_hat Z W) with Identity activation equals the dense chain.
  util::Rng rng(1);
  nn::GraphConvLayer layer(2, 3, nn::Activation::Identity, rng);
  SparseMatrix p = chain_prop();
  Tensor z = Tensor::from_rows({{1, 2}, {3, 4}, {5, 6}});
  Tensor expected = tensor::matmul(p.to_dense(), tensor::matmul(z, layer.weight().value));
  EXPECT_TRUE(tensor::allclose(layer.forward(p, z), expected, 1e-12));
}

TEST(GraphConvLayer, ReluActivationClamps) {
  util::Rng rng(2);
  nn::GraphConvLayer layer(1, 1, nn::Activation::ReLU, rng);
  layer.weight().value = Tensor::from_rows({{-1.0}});
  SparseMatrix p = SparseMatrix::propagation_operator({{}});
  Tensor z = Tensor::from_rows({{2.0}});
  // preact = 1 * (2 * -1) = -2 -> relu -> 0.
  EXPECT_EQ(layer.forward(p, z)[0], 0.0);
}

TEST(GraphConvLayer, PaperEquationOneWorkedExample) {
  // Mirrors the style of the paper's Fig. 3 walk-through: a 5-vertex graph
  // with 2 attribute channels, one conv layer with a fixed W and ReLU.
  // Graph edges: 0->1, 0->2, 1->3, 2->3, 3->4.
  std::vector<std::vector<std::size_t>> adj = {{1, 2}, {3}, {3}, {4}, {}};
  SparseMatrix p = SparseMatrix::propagation_operator(adj);
  util::Rng rng(3);
  nn::GraphConvLayer layer(2, 3, nn::Activation::ReLU, rng);
  layer.weight().value = Tensor::from_rows({{1, 0, 1}, {0, 1, 0}});  // W1 of Fig. 3
  Tensor x = Tensor::from_rows({{2, 1}, {0, 3}, {1, 1}, {4, 0}, {1, 2}});
  Tensor out = layer.forward(p, x);
  // Hand-computed: F = X W = [[2,1,2],[0,3,0],[1,1,1],[4,0,4],[1,2,1]];
  // row 0 of P = 1/3 (self + v1 + v2): (2+0+1)/3 = 1, (1+3+1)/3 = 5/3, ...
  EXPECT_NEAR(out.at(0, 0), 1.0, 1e-12);
  EXPECT_NEAR(out.at(0, 1), 5.0 / 3.0, 1e-12);
  EXPECT_NEAR(out.at(0, 2), 1.0, 1e-12);
  // row 4 (sink): deg_hat = 1 -> its own features only.
  EXPECT_NEAR(out.at(4, 0), 1.0, 1e-12);
  EXPECT_NEAR(out.at(4, 1), 2.0, 1e-12);
}

TEST(GraphConvLayer, GradientsMatchNumericTanh) {
  util::Rng rng(4);
  nn::GraphConvLayer layer(3, 2, nn::Activation::Tanh, rng);
  SparseMatrix p = chain_prop();
  Tensor z = Tensor::uniform({3, 3}, rng, -1, 1);

  const Tensor probe = layer.forward(p, z);
  Tensor w = Tensor::uniform(probe.shape(), rng, -1, 1);
  auto loss = [&](const Tensor& input) {
    Tensor out = layer.forward(p, input);
    double total = 0.0;
    for (std::size_t i = 0; i < out.size(); ++i) total += w[i] * out[i];
    return total;
  };
  layer.weight().zero_grad();
  layer.forward(p, z);
  Tensor analytic_in = layer.backward(w);
  Tensor numeric_in = numeric_grad(loss, z);
  for (std::size_t i = 0; i < analytic_in.size(); ++i) {
    EXPECT_NEAR(analytic_in[i], numeric_in[i], 1e-6);
  }
  auto loss_w = [&](const Tensor& wv) {
    const Tensor saved = layer.weight().value;
    layer.weight().value = wv;
    const double l = loss(z);
    layer.weight().value = saved;
    return l;
  };
  Tensor numeric_w = numeric_grad(loss_w, layer.weight().value);
  for (std::size_t i = 0; i < numeric_w.size(); ++i) {
    EXPECT_NEAR(layer.weight().grad[i], numeric_w[i], 1e-6);
  }
}

TEST(GraphConvLayer, RejectsChannelMismatch) {
  util::Rng rng(5);
  nn::GraphConvLayer layer(2, 2, nn::Activation::ReLU, rng);
  SparseMatrix p = chain_prop();
  EXPECT_THROW(layer.forward(p, Tensor::zeros({3, 5})), std::invalid_argument);
}

TEST(GraphConvLayer, BackwardBeforeForwardThrows) {
  util::Rng rng(6);
  nn::GraphConvLayer layer(2, 2, nn::Activation::ReLU, rng);
  EXPECT_THROW(layer.backward(Tensor::zeros({3, 2})), std::logic_error);
}

TEST(GraphConvStack, ConcatHasAllLayerChannels) {
  util::Rng rng(7);
  nn::GraphConvStack stack(11, {32, 16, 8}, nn::Activation::Tanh, rng);
  EXPECT_EQ(stack.total_channels(), 56u);
  EXPECT_EQ(stack.depth(), 3u);
  SparseMatrix p = chain_prop();
  Tensor x = Tensor::uniform({3, 11}, rng, 0, 1);
  Tensor z = stack.forward(p, x);
  EXPECT_EQ(z.dim(0), 3u);
  EXPECT_EQ(z.dim(1), 56u);
}

TEST(GraphConvStack, GradientsMatchNumeric) {
  util::Rng rng(8);
  nn::GraphConvStack stack(2, {3, 2}, nn::Activation::Tanh, rng);
  SparseMatrix p = chain_prop();
  Tensor x = Tensor::uniform({3, 2}, rng, -1, 1);

  const Tensor probe = stack.forward(p, x);
  Tensor w = Tensor::uniform(probe.shape(), rng, -1, 1);
  auto loss = [&](const Tensor& input) {
    Tensor out = stack.forward(p, input);
    double total = 0.0;
    for (std::size_t i = 0; i < out.size(); ++i) total += w[i] * out[i];
    return total;
  };
  for (auto* param : stack.parameters()) param->zero_grad();
  stack.forward(p, x);
  Tensor analytic_in = stack.backward(w);
  Tensor numeric_in = numeric_grad(loss, x);
  for (std::size_t i = 0; i < analytic_in.size(); ++i) {
    EXPECT_NEAR(analytic_in[i], numeric_in[i], 1e-6) << "dX at " << i;
  }
  for (auto* param : stack.parameters()) {
    auto loss_p = [&](const Tensor& v) {
      const Tensor saved = param->value;
      param->value = v;
      const double l = loss(x);
      param->value = saved;
      return l;
    };
    Tensor numeric_p = numeric_grad(loss_p, param->value);
    for (std::size_t i = 0; i < numeric_p.size(); ++i) {
      EXPECT_NEAR(param->grad[i], numeric_p[i], 1e-6) << param->name << " at " << i;
    }
  }
}

TEST(GraphConvStack, RejectsEmptyChannels) {
  util::Rng rng(9);
  EXPECT_THROW(nn::GraphConvStack(2, {}, nn::Activation::ReLU, rng),
               std::invalid_argument);
}

TEST(GraphConvStack, IsolatedVerticesKeepOwnFeatures) {
  // With no edges, propagation is identity; one Identity-activation layer
  // reduces to Z W exactly.
  util::Rng rng(10);
  nn::GraphConvStack stack(2, {2}, nn::Activation::Identity, rng);
  SparseMatrix p = SparseMatrix::propagation_operator({{}, {}, {}});
  Tensor x = Tensor::uniform({3, 2}, rng, -1, 1);
  Tensor expected = tensor::matmul(x, stack.parameters()[0]->value);
  EXPECT_TRUE(tensor::allclose(stack.forward(p, x), expected, 1e-12));
}

}  // namespace
}  // namespace magic::testing
