#include "nn/activations.hpp"

#include "test_util.hpp"

namespace magic::testing {
namespace {

Tensor safe_relu_input(util::Rng& rng, tensor::Shape shape) {
  // Keep values away from the ReLU kink so numerical gradients are valid.
  Tensor x = Tensor::uniform(std::move(shape), rng, 0.2, 2.0);
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (rng.bernoulli(0.5)) x[i] = -x[i];
  }
  return x;
}

TEST(ReLU, ForwardClampsNegatives) {
  nn::ReLU relu;
  Tensor x(tensor::Shape{4}, {-1.0, 0.0, 2.0, -0.5});
  Tensor y = relu.forward(x);
  EXPECT_EQ(y[0], 0.0);
  EXPECT_EQ(y[1], 0.0);
  EXPECT_EQ(y[2], 2.0);
  EXPECT_EQ(y[3], 0.0);
}

TEST(ReLU, GradientMatchesNumeric) {
  util::Rng rng(1);
  nn::ReLU relu;
  check_module_gradients(relu, safe_relu_input(rng, {3, 4}), rng);
}

TEST(Tanh, ForwardBounded) {
  nn::Tanh tanh_mod;
  Tensor y = tanh_mod.forward(Tensor(tensor::Shape{2}, {100.0, -100.0}));
  EXPECT_NEAR(y[0], 1.0, 1e-9);
  EXPECT_NEAR(y[1], -1.0, 1e-9);
}

TEST(Tanh, GradientMatchesNumeric) {
  util::Rng rng(2);
  nn::Tanh tanh_mod;
  check_module_gradients(tanh_mod, Tensor::uniform({2, 5}, rng, -2, 2), rng);
}

TEST(Sigmoid, ForwardRange) {
  nn::Sigmoid sig;
  Tensor y = sig.forward(Tensor(tensor::Shape{3}, {-10.0, 0.0, 10.0}));
  EXPECT_LT(y[0], 0.01);
  EXPECT_NEAR(y[1], 0.5, 1e-12);
  EXPECT_GT(y[2], 0.99);
}

TEST(Sigmoid, GradientMatchesNumeric) {
  util::Rng rng(3);
  nn::Sigmoid sig;
  check_module_gradients(sig, Tensor::uniform({6}, rng, -3, 3), rng);
}

TEST(ActivationFunctional, ValuesAndDerivatives) {
  using nn::Activation;
  EXPECT_EQ(nn::activate(Activation::ReLU, -1.0), 0.0);
  EXPECT_EQ(nn::activate(Activation::ReLU, 2.0), 2.0);
  EXPECT_EQ(nn::activate_grad(Activation::ReLU, -1.0), 0.0);
  EXPECT_EQ(nn::activate_grad(Activation::ReLU, 1.0), 1.0);
  EXPECT_NEAR(nn::activate(Activation::Tanh, 0.5), std::tanh(0.5), 1e-15);
  const double t = std::tanh(0.5);
  EXPECT_NEAR(nn::activate_grad(Activation::Tanh, 0.5), 1 - t * t, 1e-15);
  EXPECT_EQ(nn::activate(Activation::Identity, 3.5), 3.5);
  EXPECT_EQ(nn::activate_grad(Activation::Identity, 3.5), 1.0);
}

TEST(ReLU, BackwardRejectsShapeMismatch) {
  nn::ReLU relu;
  relu.forward(Tensor::zeros({2, 2}));
  EXPECT_THROW(relu.backward(Tensor::zeros({3})), std::invalid_argument);
}

}  // namespace
}  // namespace magic::testing
