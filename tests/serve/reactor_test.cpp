// Reactor-era regression suite for the epoll socket daemon: many clients
// through one event loop, per-connection backpressure, bounded drain under
// a non-reading client, the fatal-teardown path (a dying loop must close
// every connection fd, not just the listener), and the socket-file guards
// (never unlink a path the daemon does not own).

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <exception>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "serve/daemon.hpp"
#include "serve/scan_service.hpp"
#include "serve/serve_test_util.hpp"
#include "serve/verdict.hpp"
#include "serve/wire.hpp"

namespace magic::serve {
namespace {

using namespace std::chrono_literals;
using testing::shared_classifier;

constexpr const char* kListing =
    "401000 mov eax, 1\n"
    "401005 add eax, 2\n"
    "401008 ret\n";

ServeConfig reactor_config() {
  ServeConfig config;
  config.workers = 2;
  config.queue_capacity = 256;
  config.max_batch = 4;
  config.batch_window = 500us;
  return config;
}

std::string unique_socket_path(const std::string& tag) {
  return ::testing::TempDir() + "magicd_" + tag + "_" +
         std::to_string(::getpid()) + ".sock";
}

std::unique_ptr<wire::UnixClient> connect_retry(const std::string& path) {
  for (int attempt = 0; attempt < 300; ++attempt) {
    try {
      return std::make_unique<wire::UnixClient>(path);
    } catch (const std::runtime_error&) {
      std::this_thread::sleep_for(10ms);
    }
  }
  return nullptr;
}

/// ScanService stub whose control() blocks until released — stands in for
/// a reload that takes real time to materialize a checkpoint. Scans
/// resolve instantly so the test only measures event-loop liveness.
class BlockingControlService final : public ScanService {
 public:
  PendingVerdict submit_listing(std::string_view,
                                const std::string&) override {
    Verdict verdict;
    verdict.status = VerdictStatus::Ok;
    verdict.prediction.family_name = "stub";
    return PendingVerdict::resolved(std::move(verdict));
  }
  std::string stats_json() override { return "{\"stub\":true}"; }
  std::string control(const wire::Request&) override {
    control_started.store(true);
    while (!release.load()) std::this_thread::sleep_for(1ms);
    return "{\"status\":\"ok\",\"op\":\"reload\"}";
  }
  void drain() override {}

  std::atomic<bool> control_started{false};
  std::atomic<bool> release{false};
};

TEST(Reactor, ManyConcurrentClientsEachSeeOrderedResponses) {
  InferenceServer server(shared_classifier(), reactor_config());
  const std::string socket_path = unique_socket_path("many");
  std::atomic<bool> stop{false};
  DaemonOptions options;
  options.socket_path = socket_path;
  options.handle_signals = false;
  options.external_stop = &stop;

  std::uint64_t served = 0;
  std::thread daemon([&] { served = run_unix_daemon(server, options); });

  constexpr int kClients = 8;
  constexpr int kRequests = 6;
  const std::string b64 = wire::base64_encode(kListing);
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      auto client = connect_retry(socket_path);
      if (!client) {
        ++failures;
        return;
      }
      for (int r = 0; r < kRequests; ++r) {
        client->send_line("c" + std::to_string(c) + "r" + std::to_string(r) +
                          " b64 " + b64);
      }
      client->finish_sending();
      std::string line;
      for (int r = 0; r < kRequests; ++r) {
        if (!client->recv_line(line) ||
            line.find("\"id\":\"c" + std::to_string(c) + "r" +
                      std::to_string(r) + "\"") == std::string::npos ||
            line.find("\"status\":\"ok\"") == std::string::npos) {
          ++failures;
          return;
        }
      }
    });
  }
  for (auto& client : clients) client.join();
  stop.store(true);
  daemon.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(served, static_cast<std::uint64_t>(kClients * kRequests));
}

TEST(Reactor, StatsPayloadCarriesReactorBlock) {
  InferenceServer server(shared_classifier(), reactor_config());
  const std::string socket_path = unique_socket_path("stats");
  std::atomic<bool> stop{false};
  DaemonOptions options;
  options.socket_path = socket_path;
  options.handle_signals = false;
  options.external_stop = &stop;
  std::thread daemon([&] { run_unix_daemon(server, options); });

  auto client = connect_retry(socket_path);
  ASSERT_NE(client, nullptr);
  client->send_line("s1 b64 " + wire::base64_encode(kListing));
  client->send_line("stats");
  client->finish_sending();
  std::string verdict;
  std::string stats;
  ASSERT_TRUE(client->recv_line(verdict));
  ASSERT_TRUE(client->recv_line(stats));
  stop.store(true);
  daemon.join();
  EXPECT_NE(stats.find("\"reactor\":{"), std::string::npos) << stats;
  EXPECT_NE(stats.find("\"accepted\":1"), std::string::npos) << stats;
  EXPECT_NE(stats.find("\"requests\":1"), std::string::npos) << stats;
  EXPECT_NE(stats.find("\"simd_level\":\""), std::string::npos) << stats;
  // Ordered-flush invariant: the stats entry rendered after s1 resolved.
  EXPECT_NE(stats.find("\"completed\":1"), std::string::npos) << stats;
}

TEST(Reactor, MalformedAndControlLinesAnswerOnSingleModelDaemon) {
  InferenceServer server(shared_classifier(), reactor_config());
  const std::string socket_path = unique_socket_path("malformed");
  std::atomic<bool> stop{false};
  DaemonOptions options;
  options.socket_path = socket_path;
  options.handle_signals = false;
  options.external_stop = &stop;
  std::thread daemon([&] { run_unix_daemon(server, options); });

  auto client = connect_retry(socket_path);
  ASSERT_NE(client, nullptr);
  client->send_line("# comment: no response");
  client->send_line("");
  client->send_line("m1 frobnicate zzz");
  client->send_line("reload v2 /nonexistent/model.bin");
  client->send_line("m2 b64 " + wire::base64_encode(kListing));
  client->finish_sending();
  std::vector<std::string> lines;
  std::string line;
  while (client->recv_line(line)) lines.push_back(line);
  stop.store(true);
  daemon.join();
  // Exactly one response per non-ignorable request line, in order.
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_NE(lines[0].find("\"status\":\"error\""), std::string::npos) << lines[0];
  EXPECT_NE(lines[1].find("requires a model registry"), std::string::npos)
      << lines[1];
  EXPECT_NE(lines[2].find("\"id\":\"m2\""), std::string::npos) << lines[2];
  EXPECT_NE(lines[2].find("\"status\":\"ok\""), std::string::npos) << lines[2];
}

TEST(Reactor, TinyPendingWindowBackpressureKeepsOrder) {
  InferenceServer server(shared_classifier(), reactor_config());
  const std::string socket_path = unique_socket_path("backpressure");
  std::atomic<bool> stop{false};
  DaemonOptions options;
  options.socket_path = socket_path;
  options.handle_signals = false;
  options.external_stop = &stop;
  options.max_pending_per_connection = 4;  // forces repeated pause/resume
  std::thread daemon([&] { run_unix_daemon(server, options); });

  auto client = connect_retry(socket_path);
  ASSERT_NE(client, nullptr);
  constexpr int kRequests = 64;
  const std::string b64 = wire::base64_encode(kListing);
  for (int r = 0; r < kRequests; ++r) {
    client->send_line("b" + std::to_string(r) + " b64 " + b64);
  }
  client->finish_sending();
  std::vector<std::string> lines;
  std::string line;
  while (client->recv_line(line)) lines.push_back(line);
  stop.store(true);
  daemon.join();
  ASSERT_EQ(lines.size(), static_cast<std::size_t>(kRequests));
  for (int r = 0; r < kRequests; ++r) {
    EXPECT_NE(lines[static_cast<std::size_t>(r)].find(
                  "\"id\":\"b" + std::to_string(r) + "\""),
              std::string::npos)
        << lines[static_cast<std::size_t>(r)];
  }
}

TEST(Reactor, BlockedControlBarrierDoesNotStallOtherConnections) {
  BlockingControlService service;
  const std::string socket_path = unique_socket_path("barrier");
  std::atomic<bool> stop{false};
  DaemonOptions options;
  options.socket_path = socket_path;
  options.handle_signals = false;
  options.external_stop = &stop;
  std::thread daemon([&] { run_unix_daemon(service, options); });

  const std::string b64 = wire::base64_encode(kListing);
  auto blocked = connect_retry(socket_path);
  ASSERT_NE(blocked, nullptr);
  blocked->send_line("reload v2 /any/path");
  blocked->send_line("after b64 " + b64);  // parked behind the barrier
  for (int i = 0; i < 1000 && !service.control_started.load(); ++i) {
    std::this_thread::sleep_for(2ms);
  }
  ASSERT_TRUE(service.control_started.load());

  // Watchdog: unblock the control after a while, so a loop that stalls on
  // the unresolved barrier makes the test fail on timing instead of
  // hanging forever.
  std::thread watchdog([&] {
    std::this_thread::sleep_for(3s);
    service.release.store(true);
  });

  // While the reload is still blocked, the loop must keep serving other
  // connections — the regression was a busy-spin in pump() that never
  // returned to epoll_wait until the control resolved.
  const auto started = std::chrono::steady_clock::now();
  auto other = connect_retry(socket_path);
  ASSERT_NE(other, nullptr);
  other->send_line("o1 b64 " + b64);
  other->finish_sending();
  std::string line;
  ASSERT_TRUE(other->recv_line(line));
  EXPECT_NE(line.find("\"id\":\"o1\""), std::string::npos) << line;
  EXPECT_LT(std::chrono::steady_clock::now() - started, 2s);

  service.release.store(true);
  watchdog.join();
  blocked->finish_sending();
  std::vector<std::string> lines;
  while (blocked->recv_line(line)) lines.push_back(line);
  stop.store(true);
  daemon.join();
  // Barrier semantics held: the reload reply first, then the scan that was
  // parked behind it.
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_NE(lines[0].find("\"op\":\"reload\""), std::string::npos) << lines[0];
  EXPECT_NE(lines[1].find("\"id\":\"after\""), std::string::npos) << lines[1];
}

TEST(Reactor, FdExhaustionParksListenerAndRecovers) {
  InferenceServer server(shared_classifier(), reactor_config());
  const std::string socket_path = unique_socket_path("emfile");
  std::atomic<bool> stop{false};
  std::atomic<int> accept_errno{EMFILE};
  DaemonOptions options;
  options.socket_path = socket_path;
  options.handle_signals = false;
  options.external_stop = &stop;
  options.inject_accept_errno = &accept_errno;
  std::thread daemon([&] { run_unix_daemon(server, options); });

  // connect() completes against the listener backlog even while accepts
  // fail; the injected EMFILE parks the listener, the backoff re-arms it,
  // and the still-queued connection is then accepted and served.
  auto client = connect_retry(socket_path);
  ASSERT_NE(client, nullptr);
  client->send_line("e1 b64 " + wire::base64_encode(kListing));
  client->send_line("stats");
  client->finish_sending();
  std::string verdict;
  std::string stats;
  ASSERT_TRUE(client->recv_line(verdict));
  ASSERT_TRUE(client->recv_line(stats));
  stop.store(true);
  daemon.join();
  EXPECT_EQ(accept_errno.load(), 0);  // the injected failure was consumed
  EXPECT_NE(verdict.find("\"id\":\"e1\""), std::string::npos) << verdict;
  EXPECT_NE(verdict.find("\"status\":\"ok\""), std::string::npos) << verdict;
  EXPECT_NE(stats.find("\"accept_parks\":1"), std::string::npos) << stats;
}

TEST(Reactor, TinyReadChunkBudgetStillServesPipelinedBurst) {
  InferenceServer server(shared_classifier(), reactor_config());
  const std::string socket_path = unique_socket_path("readchunk");
  std::atomic<bool> stop{false};
  DaemonOptions options;
  options.socket_path = socket_path;
  options.handle_signals = false;
  options.external_stop = &stop;
  options.read_chunk_bytes = 128;  // far below the burst: many read passes
  std::thread daemon([&] { run_unix_daemon(server, options); });

  auto client = connect_retry(socket_path);
  ASSERT_NE(client, nullptr);
  constexpr int kRequests = 48;
  const std::string b64 = wire::base64_encode(kListing);
  for (int r = 0; r < kRequests; ++r) {
    client->send_line("t" + std::to_string(r) + " b64 " + b64);
  }
  client->finish_sending();
  std::vector<std::string> lines;
  std::string line;
  while (client->recv_line(line)) lines.push_back(line);
  stop.store(true);
  daemon.join();
  ASSERT_EQ(lines.size(), static_cast<std::size_t>(kRequests));
  for (int r = 0; r < kRequests; ++r) {
    EXPECT_NE(lines[static_cast<std::size_t>(r)].find(
                  "\"id\":\"t" + std::to_string(r) + "\""),
              std::string::npos)
        << lines[static_cast<std::size_t>(r)];
  }
}

TEST(Reactor, DrainUnderNonReadingClientIsBounded) {
  InferenceServer server(shared_classifier(), reactor_config());
  const std::string socket_path = unique_socket_path("nonreader");
  std::atomic<bool> stop{false};
  DaemonOptions options;
  options.socket_path = socket_path;
  options.handle_signals = false;
  options.external_stop = &stop;
  options.drain_grace = 300ms;
  options.write_stall_timeout = 200ms;
  std::thread daemon([&] { run_unix_daemon(server, options); });

  auto client = connect_retry(socket_path);
  ASSERT_NE(client, nullptr);
  const std::string b64 = wire::base64_encode(kListing);
  for (int r = 0; r < 32; ++r) {
    client->send_line("n" + std::to_string(r) + " b64 " + b64);
  }
  // Never read a single response; the daemon must still drain in bounded
  // time (grace period + stall timeout, not forever).
  std::this_thread::sleep_for(100ms);
  const auto started = std::chrono::steady_clock::now();
  stop.store(true);
  daemon.join();
  const auto elapsed = std::chrono::steady_clock::now() - started;
  EXPECT_LT(elapsed, 5s);
}

TEST(Reactor, FatalLoopFaultTearsDownConnectionsAndThrows) {
  InferenceServer server(shared_classifier(), reactor_config());
  const std::string socket_path = unique_socket_path("fault");
  std::atomic<bool> stop{false};
  std::atomic<bool> fault{false};
  DaemonOptions options;
  options.socket_path = socket_path;
  options.handle_signals = false;
  options.external_stop = &stop;
  options.inject_loop_fault = &fault;

  std::exception_ptr error;
  std::thread daemon([&] {
    try {
      run_unix_daemon(server, options);
    } catch (...) {
      error = std::current_exception();
    }
  });

  auto client = connect_retry(socket_path);
  ASSERT_NE(client, nullptr);
  client->send_line("f1 b64 " + wire::base64_encode(kListing));
  fault.store(true);

  // The PR 2 bug: the dying loop closed only the listener, so a connected
  // client (and the daemon's join on its thread) hung forever. Now every
  // connection fd is closed before the error propagates — this read
  // terminates (EOF or reset, both fine) instead of blocking.
  std::string line;
  try {
    while (client->recv_line(line)) {
    }
  } catch (const std::runtime_error&) {
    // Connection reset: also a terminated read.
  }
  daemon.join();
  ASSERT_NE(error, nullptr);
  try {
    std::rethrow_exception(error);
    FAIL() << "expected run_unix_daemon to throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("fault"), std::string::npos);
  }
}

TEST(Reactor, BindRefusesToReplaceNonSocketFile) {
  InferenceServer server(shared_classifier(), reactor_config());
  const std::string path = unique_socket_path("occupied");
  {
    std::ofstream out(path);
    out << "precious user data\n";
  }
  DaemonOptions options;
  options.socket_path = path;
  options.handle_signals = false;
  try {
    run_unix_daemon(server, options);
    FAIL() << "expected bind to refuse a non-socket path";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("refusing"), std::string::npos)
        << e.what();
  }
  // The file survived the refused bind.
  std::ifstream check(path);
  std::string content;
  std::getline(check, content);
  EXPECT_EQ(content, "precious user data");
  std::remove(path.c_str());
}

TEST(Reactor, StaleSocketFileIsReplacedAndRemovedOnShutdown) {
  const std::string path = unique_socket_path("stale");
  // Fabricate a stale socket file: bind and close without unlinking.
  {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    ASSERT_EQ(::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
    ::close(fd);
  }
  InferenceServer server(shared_classifier(), reactor_config());
  std::atomic<bool> stop{false};
  DaemonOptions options;
  options.socket_path = path;
  options.handle_signals = false;
  options.external_stop = &stop;
  std::thread daemon([&] { run_unix_daemon(server, options); });
  auto client = connect_retry(path);
  EXPECT_NE(client, nullptr);  // the stale file was replaced by a live listener
  client.reset();
  stop.store(true);
  daemon.join();
  // Shutdown removed the socket file it created.
  std::ifstream gone(path);
  EXPECT_FALSE(gone.good());
}

}  // namespace
}  // namespace magic::serve
