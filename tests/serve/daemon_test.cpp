#include "serve/daemon.hpp"

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "serve/serve_test_util.hpp"
#include "serve/wire.hpp"
#include "tensor/simd/dispatch.hpp"

namespace magic::serve {
namespace {

using namespace std::chrono_literals;
using testing::shared_classifier;

constexpr const char* kListing =
    "401000 mov eax, 1\n"
    "401005 add eax, 2\n"
    "401008 ret\n";

ServeConfig daemon_config() {
  ServeConfig config;
  config.workers = 2;
  config.queue_capacity = 64;
  config.max_batch = 4;
  config.batch_window = 500us;
  return config;
}

std::vector<std::string> run_stream(const std::string& input,
                                    InferenceServer& server,
                                    std::uint64_t* served = nullptr) {
  std::istringstream in(input);
  std::ostringstream out;
  const std::uint64_t n = serve_stream(in, out, server);
  if (served != nullptr) *served = n;
  std::vector<std::string> lines;
  std::istringstream reader(out.str());
  std::string line;
  while (std::getline(reader, line)) lines.push_back(line);
  return lines;
}

TEST(ServeStream, GoldenVerdictMatchesDirectScan) {
  InferenceServer server(shared_classifier(), daemon_config());
  const Verdict direct = server.scan_listing(kListing);
  ASSERT_TRUE(direct.ok());

  std::uint64_t served = 0;
  const auto lines = run_stream(
      "req1 b64 " + wire::base64_encode(kListing) + "\n", server, &served);
  EXPECT_EQ(served, 1u);
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_NE(lines[0].find("\"id\":\"req1\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"status\":\"ok\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"family\":\"" + direct.prediction.family_name + "\""),
            std::string::npos);
}

TEST(ServeStream, ResponsesComeBackInRequestOrder) {
  InferenceServer server(shared_classifier(), daemon_config());
  const std::string b64 = wire::base64_encode(kListing);
  std::ostringstream in;
  for (int i = 0; i < 12; ++i) in << "r" << i << " b64 " << b64 << "\n";
  const auto lines = run_stream(in.str(), server);
  ASSERT_EQ(lines.size(), 12u);
  for (int i = 0; i < 12; ++i) {
    EXPECT_NE(lines[static_cast<std::size_t>(i)].find(
                  "\"id\":\"r" + std::to_string(i) + "\""),
              std::string::npos)
        << lines[static_cast<std::size_t>(i)];
  }
}

TEST(ServeStream, CommentsAndBlanksIgnoredMalformedReportsError) {
  InferenceServer server(shared_classifier(), daemon_config());
  const auto lines = run_stream(
      "# a comment\n"
      "\n"
      "r1 frobnicate zzz\n"
      "r2 b64 !!!notbase64!!!\n",
      server);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_NE(lines[0].find("\"status\":\"error\""), std::string::npos);
  EXPECT_NE(lines[1].find("\"status\":\"error\""), std::string::npos);
}

TEST(ServeStream, PathRequestReadsFileAndMissingFileIsError) {
  InferenceServer server(shared_classifier(), daemon_config());
  const std::string path = ::testing::TempDir() + "magic_daemon_test_listing.asm";
  {
    std::ofstream out(path);
    out << kListing;
  }
  const auto lines = run_stream(
      "f1 path " + path + "\n" +
      "f2 path " + path + ".does-not-exist\n",
      server);
  std::remove(path.c_str());
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_NE(lines[0].find("\"id\":\"f1\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"status\":\"ok\""), std::string::npos);
  EXPECT_NE(lines[1].find("\"id\":\"f2\""), std::string::npos);
  EXPECT_NE(lines[1].find("\"status\":\"error\""), std::string::npos);
}

TEST(ServeStream, StatsLineReflectsEarlierRequests) {
  InferenceServer server(shared_classifier(), daemon_config());
  const auto lines = run_stream(
      "s1 b64 " + wire::base64_encode(kListing) + "\n" +
      "stats\n",
      server);
  ASSERT_EQ(lines.size(), 2u);
  // The stats snapshot is rendered after its ordered predecessors resolve.
  EXPECT_NE(lines[1].find("\"completed\":1"), std::string::npos) << lines[1];
  // The wire reply names the SIMD dispatch level the kernels ran at.
  const std::string level =
      magic::tensor::simd::level_name(magic::tensor::simd::active_level());
  EXPECT_NE(lines[1].find("\"simd_level\":\"" + level + "\""), std::string::npos)
      << lines[1];
}

TEST(ServeStream, QuitStopsReadingFurtherRequests) {
  InferenceServer server(shared_classifier(), daemon_config());
  std::uint64_t served = 0;
  const auto lines = run_stream(
      "q1 b64 " + wire::base64_encode(kListing) + "\n" +
      "quit\n" +
      "q2 b64 " + wire::base64_encode(kListing) + "\n",
      server, &served);
  EXPECT_EQ(served, 1u);
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_NE(lines[0].find("\"id\":\"q1\""), std::string::npos);
}

TEST(UnixDaemon, RoundTripOverSocket) {
  InferenceServer server(shared_classifier(), daemon_config());

  // Keep the socket path short: sun_path is ~108 bytes.
  const std::string socket_path =
      "/tmp/magicd_test_" + std::to_string(::getpid()) + ".sock";
  std::atomic<bool> stop{false};
  DaemonOptions options;
  options.socket_path = socket_path;
  options.handle_signals = false;
  options.external_stop = &stop;

  std::uint64_t served = 0;
  std::thread daemon([&] { served = run_unix_daemon(server, options); });

  // The listener may not be bound yet; retry the connect briefly.
  std::unique_ptr<wire::UnixClient> client;
  for (int attempt = 0; attempt < 100; ++attempt) {
    try {
      client = std::make_unique<wire::UnixClient>(socket_path);
      break;
    } catch (const std::runtime_error&) {
      std::this_thread::sleep_for(10ms);
    }
  }
  ASSERT_NE(client, nullptr) << "could not connect to " << socket_path;

  const std::string b64 = wire::base64_encode(kListing);
  client->send_line("c1 b64 " + b64);
  client->send_line("c2 b64 " + b64);
  client->send_line("stats");
  client->finish_sending();

  std::vector<std::string> lines;
  std::string line;
  while (client->recv_line(line)) lines.push_back(line);
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_NE(lines[0].find("\"id\":\"c1\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"status\":\"ok\""), std::string::npos);
  EXPECT_NE(lines[1].find("\"id\":\"c2\""), std::string::npos);
  EXPECT_NE(lines[2].find("\"submitted\":"), std::string::npos);

  stop.store(true);
  daemon.join();
  EXPECT_EQ(served, 2u);
}

TEST(UnixDaemon, SurvivesClientThatDisconnectsWithUnreadResponses) {
  // A client that vanishes before reading its responses must surface as a
  // per-connection EPIPE (MSG_NOSIGNAL in write_line), never a
  // process-killing SIGPIPE, and later clients must still be served.
  InferenceServer server(shared_classifier(), daemon_config());
  const std::string socket_path =
      "/tmp/magicd_epipe_" + std::to_string(::getpid()) + ".sock";
  std::atomic<bool> stop{false};
  DaemonOptions options;
  options.socket_path = socket_path;
  options.handle_signals = false;  // no SIG_IGN: MSG_NOSIGNAL must suffice
  options.external_stop = &stop;

  std::thread daemon([&] { run_unix_daemon(server, options); });
  const std::string b64 = wire::base64_encode(kListing);
  for (int attempt = 0; attempt < 100; ++attempt) {
    try {
      // Scope ends before any response is read: fd closes with verdicts
      // (possibly) still unflushed on the daemon side.
      wire::UnixClient vanishing(socket_path);
      vanishing.send_line("v1 b64 " + b64);
      vanishing.send_line("v2 b64 " + b64);
      break;
    } catch (const std::runtime_error&) {
      std::this_thread::sleep_for(10ms);
    }
  }

  wire::UnixClient client(socket_path);
  client.send_line("after b64 " + b64);
  client.finish_sending();
  std::vector<std::string> lines;
  std::string line;
  while (client.recv_line(line)) lines.push_back(line);
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_NE(lines[0].find("\"id\":\"after\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"status\":\"ok\""), std::string::npos);

  stop.store(true);
  daemon.join();
}

TEST(UnixDaemon, DrainMidConnectionResolvesOutstandingRequests) {
  InferenceServer server(shared_classifier(), daemon_config());
  const std::string socket_path =
      "/tmp/magicd_drain_" + std::to_string(::getpid()) + ".sock";
  std::atomic<bool> stop{false};
  DaemonOptions options;
  options.socket_path = socket_path;
  options.handle_signals = false;
  options.external_stop = &stop;

  std::thread daemon([&] { run_unix_daemon(server, options); });
  std::unique_ptr<wire::UnixClient> client;
  for (int attempt = 0; attempt < 100; ++attempt) {
    try {
      client = std::make_unique<wire::UnixClient>(socket_path);
      break;
    } catch (const std::runtime_error&) {
      std::this_thread::sleep_for(10ms);
    }
  }
  ASSERT_NE(client, nullptr);

  const std::string b64 = wire::base64_encode(kListing);
  client->send_line("d1 b64 " + b64);
  client->send_line("d2 b64 " + b64);
  // Do NOT half-close: the drain path must shut the connection down for us.
  stop.store(true);

  std::vector<std::string> lines;
  std::string line;
  while (client->recv_line(line)) lines.push_back(line);
  daemon.join();
  // Both requests were read before the drain kicked in or the connection
  // was shut down first; either way every received response is well-formed.
  for (const auto& response : lines) {
    EXPECT_NE(response.find("\"status\":"), std::string::npos) << response;
  }
}

}  // namespace
}  // namespace magic::serve
