// Concurrency stress for magic::serve — the suite scripts/check.sh tsan is
// pointed at. Every scenario here is about thread interleavings, not model
// quality: many producers against a small queue, stop() racing active
// producers, stats() readers during load, and predict_batch sharing the
// replica pool with a live server.

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "serve/server.hpp"
#include "serve/serve_test_util.hpp"

namespace magic::serve {
namespace {

using namespace std::chrono_literals;
using testing::shared_classifier;
using testing::small_graph;

TEST(ServeStress, ManyProducersSmallQueueEveryHandleResolves) {
  ServeConfig config;
  config.workers = 3;
  config.queue_capacity = 4;  // guarantees admission-control pressure
  config.max_batch = 2;
  config.batch_window = 200us;
  InferenceServer server(shared_classifier(), config);

  constexpr int kProducers = 4;
  constexpr int kPerProducer = 30;
  std::atomic<std::uint64_t> ok{0};
  std::atomic<std::uint64_t> rejected{0};
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        const auto seed = static_cast<std::uint64_t>(p * 1000 + i);
        Verdict verdict = server.submit(small_graph(i % 2, seed)).get();
        if (verdict.ok()) {
          ok.fetch_add(1, std::memory_order_relaxed);
        } else {
          ASSERT_EQ(verdict.status, VerdictStatus::RejectedQueueFull)
              << to_string(verdict.status);
          rejected.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& t : producers) t.join();

  EXPECT_EQ(ok.load() + rejected.load(),
            static_cast<std::uint64_t>(kProducers) * kPerProducer);
  EXPECT_GT(ok.load(), 0u);
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.completed, ok.load());
  EXPECT_EQ(stats.rejected_full, rejected.load());
  EXPECT_EQ(stats.queue_depth, 0u);
}

TEST(ServeStress, StopRacesActiveProducers) {
  ServeConfig config;
  config.workers = 2;
  config.queue_capacity = 8;
  config.max_batch = 4;
  config.batch_window = 300us;
  InferenceServer server(shared_classifier(), config);

  std::atomic<bool> go{true};
  std::atomic<std::uint64_t> resolved{0};
  std::vector<std::thread> producers;
  producers.reserve(3);
  for (int p = 0; p < 3; ++p) {
    producers.emplace_back([&, p] {
      int i = 0;
      while (go.load(std::memory_order_acquire)) {
        const auto seed = static_cast<std::uint64_t>(p * 10000 + i++);
        Verdict verdict = server.submit(small_graph(i % 2, seed)).get();
        // Any terminal status is fine; the point is that get() returns.
        EXPECT_TRUE(verdict.ok() ||
                    verdict.status == VerdictStatus::RejectedQueueFull ||
                    verdict.status == VerdictStatus::ShuttingDown)
            << to_string(verdict.status);
        resolved.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  std::this_thread::sleep_for(100ms);
  server.stop(/*drain=*/false);  // abort path while producers are mid-submit
  go.store(false, std::memory_order_release);
  for (auto& t : producers) t.join();
  EXPECT_GT(resolved.load(), 0u);
}

TEST(ServeStress, StatsReadersDuringLoad) {
  ServeConfig config;
  config.workers = 2;
  config.queue_capacity = 32;
  config.max_batch = 4;
  config.batch_window = 300us;
  InferenceServer server(shared_classifier(), config);

  std::atomic<bool> go{true};
  std::thread reader([&] {
    while (go.load(std::memory_order_acquire)) {
      const ServerStats stats = server.stats();
      EXPECT_LE(stats.completed, stats.submitted);
      (void)stats.to_json();
    }
  });

  std::vector<PendingVerdict> handles;
  handles.reserve(60);
  for (int i = 0; i < 60; ++i) {
    handles.push_back(server.submit(small_graph(i % 2, 500 + static_cast<std::uint64_t>(i))));
  }
  for (auto& handle : handles) (void)handle.get();
  go.store(false, std::memory_order_release);
  reader.join();

  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.submitted, 60u);
}

// The server leases worker replicas from the classifier's cached pool; a
// concurrent predict_batch over the same classifier must lease disjoint
// replicas (this is exactly the collision the checked-mode forward guard
// exists to catch).
TEST(ServeStress, PredictBatchConcurrentWithLiveServer) {
  core::MagicClassifier& clf = shared_classifier();
  ServeConfig config;
  config.workers = 2;
  config.queue_capacity = 64;
  config.max_batch = 4;
  config.batch_window = 300us;
  InferenceServer server(clf, config);

  std::vector<acfg::Acfg> batch;
  batch.reserve(16);
  for (int i = 0; i < 16; ++i) {
    batch.push_back(small_graph(i % 2, 900 + static_cast<std::uint64_t>(i)));
  }

  std::atomic<bool> go{true};
  std::thread server_load([&] {
    int i = 0;
    while (go.load(std::memory_order_acquire)) {
      (void)server.scan(small_graph(i % 2, 2000 + static_cast<std::uint64_t>(i)));
      ++i;
    }
  });

  util::ThreadPool pool(2);
  for (int round = 0; round < 5; ++round) {
    const auto predictions = clf.predict_batch(batch, pool);
    ASSERT_EQ(predictions.size(), batch.size());
  }
  go.store(false, std::memory_order_release);
  server_load.join();
}

TEST(ServeStress, ConcurrentScanCallersShareTheServer) {
  ServeConfig config;
  config.workers = 4;
  config.queue_capacity = 128;
  config.max_batch = 4;
  config.batch_window = 300us;
  InferenceServer server(shared_classifier(), config);

  std::vector<std::thread> callers;
  callers.reserve(6);
  std::atomic<std::uint64_t> ok{0};
  for (int c = 0; c < 6; ++c) {
    callers.emplace_back([&, c] {
      for (int i = 0; i < 10; ++i) {
        const auto seed = static_cast<std::uint64_t>(3000 + c * 100 + i);
        if (server.scan(small_graph(i % 2, seed)).ok()) {
          ok.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& t : callers) t.join();
  EXPECT_EQ(ok.load(), 60u);
}

}  // namespace
}  // namespace magic::serve
