#include "serve/wire.hpp"

#include <stdexcept>
#include <string>

#include <gtest/gtest.h>

namespace magic::serve::wire {
namespace {

TEST(Base64, RoundTripsArbitraryBytes) {
  std::string data;
  for (int i = 0; i < 256; ++i) data.push_back(static_cast<char>(i));
  for (std::size_t len : {std::size_t{0}, std::size_t{1}, std::size_t{2},
                          std::size_t{3}, std::size_t{100}, data.size()}) {
    const std::string slice = data.substr(0, len);
    EXPECT_EQ(base64_decode(base64_encode(slice)), slice) << "len=" << len;
  }
}

TEST(Base64, KnownVectors) {
  EXPECT_EQ(base64_encode("f"), "Zg==");
  EXPECT_EQ(base64_encode("fo"), "Zm8=");
  EXPECT_EQ(base64_encode("foo"), "Zm9v");
  EXPECT_EQ(base64_decode("Zm9vYmFy"), "foobar");
  EXPECT_EQ(base64_decode("Zm9vYg=="), "foob");
}

TEST(Base64, AcceptsUnpaddedInput) {
  EXPECT_EQ(base64_decode("Zm8"), "fo");
}

TEST(Base64, RejectsGarbage) {
  EXPECT_THROW(base64_decode("a!b"), std::runtime_error);
  EXPECT_THROW(base64_decode("A"), std::runtime_error);  // truncated quantum
}

TEST(Base64, RejectsMisplacedPadding) {
  // '=' may only appear as up to two trailing padding characters; anything
  // else must be a protocol error, not a silently truncated payload.
  EXPECT_THROW(base64_decode("QUJD=garbage"), std::runtime_error);
  EXPECT_THROW(base64_decode("Zm9v=Zm9v"), std::runtime_error);
  EXPECT_THROW(base64_decode("Zg==="), std::runtime_error);   // three pads
  EXPECT_THROW(base64_decode("Zm9vYg="), std::runtime_error); // not a whole quantum
  EXPECT_EQ(base64_decode("Zg=="), "f");                      // valid padding still fine
}

TEST(ParseRequestLine, SkipsBlankAndComments) {
  EXPECT_FALSE(parse_request_line("").has_value());
  EXPECT_FALSE(parse_request_line("   \t ").has_value());
  EXPECT_FALSE(parse_request_line("# comment").has_value());
}

TEST(ParseRequestLine, ParsesPathRequests) {
  const auto request = parse_request_line("req-1 path /tmp/sample.asm");
  ASSERT_TRUE(request.has_value());
  EXPECT_EQ(request->kind, Request::Kind::Path);
  EXPECT_EQ(request->id, "req-1");
  EXPECT_EQ(request->payload, "/tmp/sample.asm");
}

TEST(ParseRequestLine, DecodesInlineBase64) {
  const std::string listing = "401000 mov eax, 1\n401005 ret\n";
  const auto request =
      parse_request_line("x b64 " + base64_encode(listing));
  ASSERT_TRUE(request.has_value());
  EXPECT_EQ(request->kind, Request::Kind::Base64);
  EXPECT_EQ(request->payload, listing);
}

TEST(ParseRequestLine, ParsesControlCommands) {
  EXPECT_EQ(parse_request_line("stats")->kind, Request::Kind::Stats);
  EXPECT_EQ(parse_request_line("quit")->kind, Request::Kind::Quit);
  EXPECT_EQ(parse_request_line("  quit \r")->kind, Request::Kind::Quit);
}

TEST(ParseRequestLine, ThrowsOnMalformedInput) {
  EXPECT_THROW(parse_request_line("id"), std::runtime_error);
  EXPECT_THROW(parse_request_line("id path"), std::runtime_error);
  EXPECT_THROW(parse_request_line("id teleport x"), std::runtime_error);
  EXPECT_THROW(parse_request_line("id b64 !!!"), std::runtime_error);
}

TEST(JsonEscape, EscapesControlAndQuoteCharacters) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(json_escape(std::string(1, '\x01')), "\\u0001");
}

TEST(VerdictToJson, RendersOkVerdicts) {
  Verdict verdict;
  verdict.status = VerdictStatus::Ok;
  verdict.prediction.family_index = 1;
  verdict.prediction.family_name = "Swizzor";
  verdict.prediction.probabilities = {0.25, 0.75};
  verdict.latency_ms = 1.5;
  const std::string json = verdict_to_json("r1", verdict);
  EXPECT_NE(json.find("\"id\":\"r1\""), std::string::npos);
  EXPECT_NE(json.find("\"status\":\"ok\""), std::string::npos);
  EXPECT_NE(json.find("\"family\":\"Swizzor\""), std::string::npos);
  EXPECT_NE(json.find("\"confidence\":0.75"), std::string::npos);
  EXPECT_NE(json.find("\"probabilities\":[0.25,0.75]"), std::string::npos);
}

TEST(VerdictToJson, RendersNonOkStatuses) {
  Verdict verdict;
  verdict.status = VerdictStatus::RejectedQueueFull;
  EXPECT_NE(verdict_to_json("r", verdict).find("rejected_queue_full"),
            std::string::npos);
  verdict.status = VerdictStatus::Error;
  verdict.error = "boom \"quoted\"";
  const std::string json = verdict_to_json("r", verdict);
  EXPECT_NE(json.find("\"error\":\"boom \\\"quoted\\\"\""), std::string::npos);
  EXPECT_EQ(json.find("\"family\""), std::string::npos);
}

}  // namespace
}  // namespace magic::serve::wire
