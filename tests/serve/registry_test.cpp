// ModelRegistry suite: named versions side by side, atomic hot-swap of the
// default with zero dropped in-flight requests, per-request version
// override, deterministic shadow mirroring with agreement counters, and the
// control-line wire surface (reload/shadow) end to end through the daemon.

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "magic/classifier.hpp"
#include "serve/daemon.hpp"
#include "serve/registry.hpp"
#include "serve/serve_test_util.hpp"
#include "serve/wire.hpp"

namespace magic::serve {
namespace {

using namespace std::chrono_literals;
using testing::shared_classifier;

constexpr const char* kListing =
    "401000 mov eax, 1\n"
    "401005 add eax, 2\n"
    "401008 ret\n";

ServeConfig registry_config() {
  ServeConfig config;
  config.workers = 2;
  config.queue_capacity = 256;
  config.max_batch = 4;
  config.batch_window = 500us;
  return config;
}

/// Checkpoint file of the shared test classifier: the reload source for
/// every test here (saved once per process).
const std::string& shared_checkpoint() {
  static const std::string path = [] {
    std::string p = ::testing::TempDir() + "magic_registry_ckpt_" +
                    std::to_string(::getpid()) + ".bin";
    shared_classifier().save_file(p);
    return p;
  }();
  return path;
}

std::unique_ptr<ModelRegistry> make_registry(const std::string& name = "v1") {
  auto model = std::make_unique<core::MagicClassifier>(
      core::MagicClassifier::load_file(shared_checkpoint()));
  return std::make_unique<ModelRegistry>(name, std::move(model),
                                         registry_config());
}

TEST(ModelRegistry, ScansRouteToDefaultVersion) {
  auto registry = make_registry();
  EXPECT_EQ(registry->default_version(), "v1");
  Verdict verdict = registry->submit_listing(kListing, "").get();
  EXPECT_TRUE(verdict.ok()) << verdict.error;
  const RegistryStats stats = registry->registry_stats();
  EXPECT_EQ(stats.default_version, "v1");
  ASSERT_EQ(stats.versions.size(), 1u);
  EXPECT_EQ(stats.versions[0], "v1");
  ASSERT_EQ(stats.operators.size(), 1u);
  EXPECT_EQ(stats.operators[0], "paper");
  EXPECT_EQ(stats.reloads, 0u);
  EXPECT_TRUE(stats.shadow_version.empty());
  registry->drain();
}

TEST(ModelRegistry, UnknownVersionOverrideResolvesError) {
  auto registry = make_registry();
  Verdict verdict = registry->submit_listing(kListing, "nope").get();
  EXPECT_FALSE(verdict.ok());
  EXPECT_NE(verdict.error.find("unknown model version 'nope'"),
            std::string::npos)
      << verdict.error;
  registry->drain();
}

TEST(ModelRegistry, ReloadSwapsDefaultAndKeepsOldVersionAddressable) {
  auto registry = make_registry();
  registry->load_version("v2", shared_checkpoint());
  EXPECT_EQ(registry->default_version(), "v2");
  // Old version still serves via explicit override.
  Verdict via_v1 = registry->submit_listing(kListing, "v1").get();
  EXPECT_TRUE(via_v1.ok()) << via_v1.error;
  Verdict via_default = registry->submit_listing(kListing, "").get();
  EXPECT_TRUE(via_default.ok()) << via_default.error;
  const RegistryStats stats = registry->registry_stats();
  EXPECT_EQ(stats.reloads, 1u);
  ASSERT_EQ(stats.versions.size(), 2u);
  // The operator column stays parallel to the version listing.
  ASSERT_EQ(stats.operators.size(), 2u);
  EXPECT_EQ(stats.operators[0], "paper");
  EXPECT_EQ(stats.operators[1], "paper");
  registry->drain();
}

TEST(ModelRegistry, HotSwapUnderLoadDropsNoInFlightRequests) {
  auto registry = make_registry();
  constexpr int kThreads = 4;
  constexpr int kPerThread = 50;
  std::atomic<int> not_ok{0};
  std::atomic<bool> go{false};
  std::vector<std::thread> scanners;
  scanners.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    scanners.emplace_back([&] {
      while (!go.load()) std::this_thread::yield();
      for (int r = 0; r < kPerThread; ++r) {
        Verdict verdict = registry->submit_listing(kListing, "").get();
        if (!verdict.ok()) ++not_ok;
      }
    });
  }
  go.store(true);
  // Swap the default repeatedly while scans are in flight; every request
  // must resolve Ok from whichever version it was routed to — reload never
  // resolves an accepted request as ShuttingDown or Error.
  for (int swap = 0; swap < 6; ++swap) {
    registry->load_version(swap % 2 == 0 ? "v2" : "v1", shared_checkpoint());
    std::this_thread::sleep_for(5ms);
  }
  for (auto& scanner : scanners) scanner.join();
  EXPECT_EQ(not_ok.load(), 0);
  EXPECT_EQ(registry->registry_stats().reloads, 6u);
  registry->drain();
}

TEST(ModelRegistry, AgreementComparesFamilyNamesNotIndices) {
  // Primary and shadow come from different model versions whose family
  // orderings can differ: the same family may sit at different indices,
  // and the same index may hold different families.
  Verdict primary;
  primary.status = VerdictStatus::Ok;
  primary.prediction.family_index = 0;
  primary.prediction.family_name = "swizzor";
  Verdict shadow;
  shadow.status = VerdictStatus::Ok;
  shadow.prediction.family_index = 3;  // same family, different slot
  shadow.prediction.family_name = "swizzor";
  EXPECT_TRUE(verdicts_agree(primary, shadow));
  shadow.prediction.family_index = 0;  // same slot, different family
  shadow.prediction.family_name = "allaple";
  EXPECT_FALSE(verdicts_agree(primary, shadow));
  shadow.prediction.family_name = "swizzor";
  shadow.status = VerdictStatus::Error;  // incomparable pair never agrees
  EXPECT_FALSE(verdicts_agree(primary, shadow));
}

TEST(ModelRegistry, ShadowFullFractionMirrorsEveryScanAndAgrees) {
  auto registry = make_registry();
  registry->load_version("v2", shared_checkpoint(), /*make_default=*/false);
  EXPECT_EQ(registry->default_version(), "v1");
  registry->set_shadow("v2", 1.0);
  constexpr int kScans = 20;
  for (int r = 0; r < kScans; ++r) {
    Verdict verdict = registry->submit_listing(kListing, "").get();
    EXPECT_TRUE(verdict.ok()) << verdict.error;
  }
  // Shadow verdicts may still be resolving; drain joins every pair.
  registry->drain();
  const RegistryStats stats = registry->registry_stats();
  EXPECT_EQ(stats.shadow_version, "v2");
  EXPECT_EQ(stats.shadow_mirrored, static_cast<std::uint64_t>(kScans));
  // Same checkpoint on both sides: every comparable pair agrees.
  EXPECT_EQ(stats.shadow_agreed + stats.shadow_failed,
            static_cast<std::uint64_t>(kScans));
  EXPECT_EQ(stats.shadow_disagreed, 0u);
}

TEST(ModelRegistry, ShadowFractionIsDeterministicallyExact) {
  auto registry = make_registry();
  registry->load_version("v2", shared_checkpoint(), /*make_default=*/false);
  const double fraction = 0.5;
  registry->set_shadow("v2", fraction);
  constexpr int kScans = 21;
  for (int r = 0; r < kScans; ++r) {
    Verdict verdict = registry->submit_listing(kListing, "").get();
    EXPECT_TRUE(verdict.ok()) << verdict.error;
  }
  registry->drain();
  const RegistryStats stats = registry->registry_stats();
  EXPECT_EQ(stats.shadow_mirrored,
            static_cast<std::uint64_t>(std::floor(kScans * fraction)));
}

TEST(ModelRegistry, ExplicitOverridesAreNeverMirrored) {
  auto registry = make_registry();
  registry->load_version("v2", shared_checkpoint(), /*make_default=*/false);
  registry->set_shadow("v2", 1.0);
  for (int r = 0; r < 5; ++r) {
    Verdict verdict = registry->submit_listing(kListing, "v1").get();
    EXPECT_TRUE(verdict.ok()) << verdict.error;
  }
  registry->drain();
  EXPECT_EQ(registry->registry_stats().shadow_mirrored, 0u);
}

TEST(ModelRegistry, ControlRejectsBadReloadAndUnknownShadow) {
  auto registry = make_registry();
  wire::Request reload;
  reload.kind = wire::Request::Kind::Reload;
  reload.version = "v2";
  reload.payload = "/nonexistent/checkpoint.bin";
  const std::string reload_reply = registry->control(reload);
  EXPECT_NE(reload_reply.find("\"status\":\"error\""), std::string::npos)
      << reload_reply;
  // A failed reload must not disturb the registry.
  EXPECT_EQ(registry->default_version(), "v1");
  EXPECT_EQ(registry->registry_stats().versions.size(), 1u);

  wire::Request shadow;
  shadow.kind = wire::Request::Kind::Shadow;
  shadow.version = "ghost";
  shadow.fraction = 0.5;
  const std::string shadow_reply = registry->control(shadow);
  EXPECT_NE(shadow_reply.find("\"status\":\"error\""), std::string::npos)
      << shadow_reply;
  EXPECT_TRUE(registry->registry_stats().shadow_version.empty());
  registry->drain();
}

TEST(ModelRegistry, WireReloadShadowAndOverrideEndToEnd) {
  auto registry = make_registry();
  const std::string socket_path = ::testing::TempDir() + "magicd_registry_" +
                                  std::to_string(::getpid()) + ".sock";
  std::atomic<bool> stop{false};
  DaemonOptions options;
  options.socket_path = socket_path;
  options.handle_signals = false;
  options.external_stop = &stop;
  std::thread daemon([&] { run_unix_daemon(*registry, options); });

  std::unique_ptr<wire::UnixClient> client;
  for (int attempt = 0; attempt < 300 && !client; ++attempt) {
    try {
      client = std::make_unique<wire::UnixClient>(socket_path);
    } catch (const std::runtime_error&) {
      std::this_thread::sleep_for(10ms);
    }
  }
  ASSERT_NE(client, nullptr);

  const std::string b64 = wire::base64_encode(kListing);
  client->send_line("r1 b64 " + b64);
  client->send_line("reload v2 " + shared_checkpoint());
  client->send_line("r2@v1 b64 " + b64);
  client->send_line("r3@ghost b64 " + b64);
  client->send_line("shadow v1 1.0");
  client->send_line("r4 b64 " + b64);
  client->send_line("stats");
  client->finish_sending();

  std::vector<std::string> lines;
  std::string line;
  while (client->recv_line(line)) lines.push_back(line);
  stop.store(true);
  daemon.join();

  ASSERT_EQ(lines.size(), 7u);
  EXPECT_NE(lines[0].find("\"id\":\"r1\""), std::string::npos) << lines[0];
  EXPECT_NE(lines[0].find("\"status\":\"ok\""), std::string::npos) << lines[0];
  EXPECT_NE(lines[1].find("\"op\":\"reload\""), std::string::npos) << lines[1];
  EXPECT_NE(lines[1].find("\"default\":\"v2\""), std::string::npos) << lines[1];
  EXPECT_NE(lines[2].find("\"id\":\"r2\""), std::string::npos) << lines[2];
  EXPECT_NE(lines[2].find("\"status\":\"ok\""), std::string::npos) << lines[2];
  EXPECT_NE(lines[3].find("\"id\":\"r3\""), std::string::npos) << lines[3];
  EXPECT_NE(lines[3].find("unknown model version"), std::string::npos)
      << lines[3];
  EXPECT_NE(lines[4].find("\"op\":\"shadow\""), std::string::npos) << lines[4];
  EXPECT_NE(lines[5].find("\"id\":\"r4\""), std::string::npos) << lines[5];
  EXPECT_NE(lines[5].find("\"status\":\"ok\""), std::string::npos) << lines[5];
  EXPECT_NE(lines[6].find("\"registry\":{"), std::string::npos) << lines[6];
  EXPECT_NE(lines[6].find("\"default\":\"v2\""), std::string::npos) << lines[6];
  EXPECT_NE(lines[6].find("\"reloads\":1"), std::string::npos) << lines[6];
  EXPECT_NE(lines[6].find("\"reactor\":{"), std::string::npos) << lines[6];

  // r4 was default-routed with shadow fraction 1.0: mirrored exactly once.
  registry->drain();
  const RegistryStats stats = registry->registry_stats();
  EXPECT_EQ(stats.shadow_mirrored, 1u);
}

TEST(ModelRegistry, StdioStreamServesControlLines) {
  auto registry = make_registry();
  std::istringstream in("p1 b64 " + wire::base64_encode(kListing) +
                        "\nreload v2 " + shared_checkpoint() +
                        "\nshadow off\nstats\n");
  std::ostringstream out;
  const std::uint64_t served = serve_stream(in, out, *registry);
  registry->drain();
  EXPECT_EQ(served, 1u);
  const std::string text = out.str();
  EXPECT_NE(text.find("\"id\":\"p1\""), std::string::npos) << text;
  EXPECT_NE(text.find("\"op\":\"reload\""), std::string::npos) << text;
  EXPECT_NE(text.find("\"mode\":\"off\""), std::string::npos) << text;
  EXPECT_NE(text.find("\"registry\":{"), std::string::npos) << text;
}

}  // namespace
}  // namespace magic::serve
