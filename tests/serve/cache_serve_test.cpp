// Verdict cache wired into InferenceServer: hits must be bit-identical to
// the uncached classify() answer (the acceptance bar of the subsystem — a
// cache that changes answers is a correctness bug, not an optimization),
// hit/miss counters must be exact, and the cache must keep the server's
// verdicts stable across duplicate submissions.

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "serve/server.hpp"
#include "serve/serve_test_util.hpp"

namespace magic::serve {
namespace {

using serve::testing::shared_classifier;
using serve::testing::small_graph;

ServeConfig cached_config(std::size_t cache_bytes = 8u << 20) {
  ServeConfig config;
  config.workers = 2;
  config.queue_capacity = 64;
  config.max_batch = 4;
  config.cache_bytes = cache_bytes;
  return config;
}

TEST(CacheServe, HitIsBitIdenticalToUncachedPredict) {
  core::MagicClassifier& clf = shared_classifier();
  const acfg::Acfg sample = small_graph(1, 7);
  const core::Prediction direct = clf.predict(sample);

  InferenceServer server(clf, cached_config());
  const Verdict miss = server.scan(sample);  // scored + inserted
  const Verdict hit = server.scan(sample);   // served from the cache
  server.stop();

  ASSERT_TRUE(miss.ok());
  ASSERT_TRUE(hit.ok());
  const ServerStats stats = server.stats();
  EXPECT_TRUE(stats.cache.enabled);
  EXPECT_EQ(stats.cache.hits, 1u);
  EXPECT_EQ(stats.cache.misses, 1u);
  EXPECT_EQ(stats.cache.insertions, 1u);

  for (const Verdict* verdict : {&miss, &hit}) {
    EXPECT_EQ(verdict->prediction.family_index, direct.family_index);
    EXPECT_EQ(verdict->prediction.family_name, direct.family_name);
    ASSERT_EQ(verdict->prediction.probabilities.size(),
              direct.probabilities.size());
    for (std::size_t c = 0; c < direct.probabilities.size(); ++c) {
      // Bit-identical, not approximately equal: a hit replays the exact
      // stored verdict.
      EXPECT_EQ(verdict->prediction.probabilities[c], direct.probabilities[c])
          << "class " << c;
    }
  }
}

TEST(CacheServe, DuplicateStreamCountsHitsExactly) {
  core::MagicClassifier& clf = shared_classifier();
  InferenceServer server(clf, cached_config());

  const acfg::Acfg a = small_graph(0, 1);
  const acfg::Acfg b = small_graph(1, 2);
  // First occurrences are misses; every repeat afterwards must hit because
  // scan() is synchronous (the insert completed before the next submit).
  const acfg::Acfg* stream[] = {&a, &b, &a, &a, &b, &a, &b};
  std::size_t ok = 0;
  for (const acfg::Acfg* sample : stream) {
    if (server.scan(*sample).ok()) ++ok;
  }
  server.stop();

  EXPECT_EQ(ok, 7u);
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.cache.misses, 2u);
  EXPECT_EQ(stats.cache.hits, 5u);
  EXPECT_EQ(stats.completed, 7u) << "hits count as completed requests";
}

TEST(CacheServe, CacheOffServerReportsDisabled) {
  core::MagicClassifier& clf = shared_classifier();
  ServeConfig config = cached_config(/*cache_bytes=*/0);
  InferenceServer server(clf, config);
  const acfg::Acfg sample = small_graph(1, 7);
  ASSERT_TRUE(server.scan(sample).ok());
  ASSERT_TRUE(server.scan(sample).ok());
  server.stop();

  const ServerStats stats = server.stats();
  EXPECT_FALSE(stats.cache.enabled);
  EXPECT_EQ(stats.cache.hits, 0u);
  EXPECT_EQ(stats.cache.misses, 0u);
  EXPECT_EQ(stats.completed, 2u);
}

TEST(CacheServe, DistinctSamplesNeverHit) {
  core::MagicClassifier& clf = shared_classifier();
  InferenceServer server(clf, cached_config());
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    ASSERT_TRUE(server.scan(small_graph(static_cast<int>(seed % 2), seed)).ok());
  }
  server.stop();
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.cache.hits, 0u);
  EXPECT_EQ(stats.cache.misses, 6u);
}

TEST(CacheServe, PendingVerdictFromHitResolvesImmediately) {
  core::MagicClassifier& clf = shared_classifier();
  InferenceServer server(clf, cached_config());
  const acfg::Acfg sample = small_graph(0, 3);
  ASSERT_TRUE(server.scan(sample).ok());
  // A duplicate submit must come back already resolved: the hit path never
  // enters the queue.
  PendingVerdict handle = server.submit(sample);
  EXPECT_TRUE(handle.ready());
  EXPECT_TRUE(handle.get().ok());
  server.stop();
  EXPECT_EQ(server.stats().cache.hits, 1u);
}

TEST(CacheServe, StatsJsonCarriesCacheBlock) {
  core::MagicClassifier& clf = shared_classifier();
  InferenceServer server(clf, cached_config());
  const acfg::Acfg sample = small_graph(1, 9);
  ASSERT_TRUE(server.scan(sample).ok());
  ASSERT_TRUE(server.scan(sample).ok());
  server.stop();
  const std::string json = server.stats().to_json();
  EXPECT_NE(json.find("\"cache\":{\"enabled\":true,\"hits\":1"),
            std::string::npos)
      << json;
}

}  // namespace
}  // namespace magic::serve
