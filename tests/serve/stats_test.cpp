// ServerStats JSON rendering (golden) and the StatsCollector -> registry
// mirror. The golden test pins the full batch_size_counts array: index 0
// must be emitted so the JSON describes exactly the distribution
// mean_batch_size() averages over.

#include <string>

#include <gtest/gtest.h>

#include "obs/metrics.hpp"
#include "serve/stats.hpp"

namespace magic::serve {
namespace {

TEST(ServerStats, ToJsonGolden) {
  ServerStats s;
  s.submitted = 10;
  s.completed = 8;
  s.rejected_full = 1;
  s.rejected_shutdown = 0;
  s.expired = 1;
  s.failed = 0;
  s.batches = 3;
  s.packed_batches = 1;
  s.queue_depth = 2;
  s.workers = 4;
  s.batch_size_counts = {0, 2, 1};  // two 1-batches, one 2-batch
  s.latency_p50_ms = 1.5;
  s.latency_p95_ms = 2.5;
  s.latency_p99_ms = 3.5;
  s.latency_mean_ms = 2.0;
  s.latency_max_ms = 4.0;
  s.cache.enabled = true;
  s.cache.hits = 3;
  s.cache.misses = 7;
  s.cache.insertions = 7;
  s.cache.entries = 7;
  s.cache.bytes = 4096;
  s.cache.max_bytes = 1048576;
  EXPECT_EQ(s.to_json(),
            "{\"submitted\":10,\"completed\":8,\"rejected_full\":1,"
            "\"rejected_shutdown\":0,\"expired\":1,\"failed\":0,\"batches\":3,"
            "\"packed_batches\":1,"
            "\"queue_depth\":2,\"workers\":4,\"mean_batch_size\":1.33333,"
            "\"batch_size_counts\":[0,2,1],"
            "\"latency_ms\":{\"p50\":1.5,\"p95\":2.5,\"p99\":3.5,"
            "\"mean\":2,\"max\":4},"
            "\"cache\":{\"enabled\":true,\"hits\":3,\"misses\":7,"
            "\"hit_rate\":0.3,\"insertions\":7,\"evictions\":0,"
            "\"oversized\":0,\"entries\":7,\"bytes\":4096,"
            "\"max_bytes\":1048576}}");
}

TEST(ServerStats, ToJsonCacheDisabledByDefault) {
  // A cache-less server still emits the block (consumers can always key on
  // "cache"), with enabled=false and all-zero counters.
  ServerStats s;
  const std::string json = s.to_json();
  EXPECT_NE(json.find("\"cache\":{\"enabled\":false,\"hits\":0"),
            std::string::npos)
      << json;
}

TEST(ServerStats, ToJsonEmitsIndexZero) {
  // Regression: index 0 used to be dropped, so the array no longer matched
  // the distribution behind mean_batch_size().
  ServerStats s;
  s.batch_size_counts = {0, 5};
  const std::string json = s.to_json();
  EXPECT_NE(json.find("\"batch_size_counts\":[0,5]"), std::string::npos) << json;
  EXPECT_DOUBLE_EQ(s.mean_batch_size(), 1.0);
}

TEST(ServerStats, MeanBatchSizeMatchesEmittedArray) {
  ServerStats s;
  s.batch_size_counts = {0, 2, 1};
  EXPECT_NEAR(s.mean_batch_size(), 4.0 / 3.0, 1e-12);
}

TEST(StatsCollector, SnapshotCountsAndBatchTable) {
  StatsCollector collector(/*max_batch=*/2);
  collector.on_submitted();
  collector.on_submitted();
  collector.on_submitted();
  collector.on_batch(1);
  collector.on_batch(1);
  collector.on_batch(2);
  collector.on_completed(1.0);
  collector.on_completed(3.0);
  collector.on_expired();

  const ServerStats s = collector.snapshot(/*queue_depth=*/1, /*workers=*/2);
  EXPECT_EQ(s.submitted, 3u);
  EXPECT_EQ(s.completed, 2u);
  EXPECT_EQ(s.expired, 1u);
  EXPECT_EQ(s.batches, 3u);
  EXPECT_EQ(s.queue_depth, 1u);
  EXPECT_EQ(s.workers, 2u);
  ASSERT_EQ(s.batch_size_counts.size(), 3u);
  EXPECT_EQ(s.batch_size_counts[0], 0u);
  EXPECT_EQ(s.batch_size_counts[1], 2u);
  EXPECT_EQ(s.batch_size_counts[2], 1u);
  EXPECT_GT(s.latency_mean_ms, 0.0);
  EXPECT_DOUBLE_EQ(s.latency_max_ms, 3.0);
}

TEST(StatsCollector, MirrorsIntoGlobalRegistryWhenEnabled) {
  obs::MetricsRegistry::global().reset_values();
  obs::set_enabled(true);
  {
    StatsCollector collector(/*max_batch=*/2);
    collector.on_submitted();
    collector.on_completed(2.0);
  }
  obs::set_enabled(false);
  obs::MetricsRegistry& registry = obs::MetricsRegistry::global();
  EXPECT_EQ(registry.counter("serve.submitted").value(), 1u);
  EXPECT_EQ(registry.counter("serve.completed").value(), 1u);
  EXPECT_EQ(registry.histogram("serve.latency_ms").snapshot().count(), 1u);
  registry.reset_values();
}

TEST(StatsCollector, NoMirrorWhenDisabled) {
  obs::MetricsRegistry::global().reset_values();
  ASSERT_FALSE(obs::enabled());
  StatsCollector collector(/*max_batch=*/2);
  collector.on_submitted();
  collector.on_completed(2.0);
  EXPECT_EQ(obs::MetricsRegistry::global().counter("serve.submitted").value(), 0u);
  EXPECT_EQ(obs::MetricsRegistry::global().counter("serve.completed").value(), 0u);
  // The per-server snapshot still sees everything.
  const ServerStats s = collector.snapshot(0, 0);
  EXPECT_EQ(s.submitted, 1u);
  EXPECT_EQ(s.completed, 1u);
}

}  // namespace
}  // namespace magic::serve
