#pragma once
// Shared fixture for the serve-layer tests: one small classifier trained on
// the synthetic separable dataset (trained once per process, the suites
// only ever read predictions from replicas).

#include <memory>

#include "magic/classifier.hpp"
#include "magic/core_test_util.hpp"

namespace magic::serve::testing {

inline core::DgcnnConfig small_config() {
  core::DgcnnConfig cfg;
  cfg.graph_conv_channels = {8, 8};
  cfg.pooling = core::PoolingType::SortPooling;
  cfg.remaining = core::RemainingLayer::WeightedVertices;
  cfg.hidden_dim = 16;
  cfg.dropout_rate = 0.1;
  return cfg;
}

/// A fitted classifier over the two-family separable dataset. Trains on
/// first call and reuses the instance afterwards (serving tests only read).
inline core::MagicClassifier& shared_classifier() {
  static std::unique_ptr<core::MagicClassifier> clf = [] {
    core::TrainOptions train;
    train.epochs = 12;
    train.batch_size = 8;
    train.learning_rate = 3e-3;
    auto built = std::make_unique<core::MagicClassifier>(small_config(), train, 2);
    built->fit(core::testing::separable_dataset(12, 1), 0.2);
    return built;
  }();
  return *clf;
}

/// A small scannable graph of the given label.
inline acfg::Acfg small_graph(int label, std::uint64_t seed) {
  util::Rng rng(seed);
  return core::testing::make_graph(label, 6, label == 0, rng);
}

/// A graph big enough that one forward pass takes many milliseconds —
/// used to keep a single worker busy while tests build up queue pressure.
inline acfg::Acfg plug_graph() {
  util::Rng rng(99);
  return core::testing::make_graph(0, 20000, /*chain=*/true, rng);
}

}  // namespace magic::serve::testing
