// Packed micro-batch execution in the serving layer: a flushed batch runs
// as ONE fused forward on the leased replica, malformed graphs fall back to
// per-item scoring with per-request error attribution, and — the regression
// this file pins — the replica lease is released even when the packed
// forward throws (a leaked lease would strand a replica forever).

#include <chrono>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "magic/replica_pool.hpp"
#include "serve/server.hpp"
#include "serve/serve_test_util.hpp"

namespace magic::serve {
namespace {

using namespace std::chrono_literals;
using testing::shared_classifier;
using testing::small_graph;

/// One worker + a generous window so concurrently submitted requests are
/// guaranteed to coalesce into a single micro-batch.
ServeConfig one_worker_batching() {
  ServeConfig config;
  config.workers = 1;
  config.queue_capacity = 64;
  config.max_batch = 8;
  config.batch_window = 50ms;
  return config;
}

/// An ACFG whose attribute matrix has the wrong channel count: packing it
/// with healthy graphs throws (inconsistent channels), and scoring it alone
/// throws inside the forward pass — both serve-layer failure paths.
acfg::Acfg bad_channel_graph() {
  acfg::Acfg g;
  g.out_edges.assign(3, {});
  g.out_edges[0].push_back(1);
  g.attributes = tensor::Tensor({3, 2});
  for (std::size_t i = 0; i < g.attributes.size(); ++i) g.attributes[i] = 1.0;
  return g;
}

TEST(PackedServe, MicroBatchScoresPackedAndMatchesPredict) {
  core::MagicClassifier& clf = shared_classifier();
  InferenceServer server(clf, one_worker_batching());

  std::vector<acfg::Acfg> samples;
  std::vector<PendingVerdict> handles;
  for (int i = 0; i < 6; ++i) {
    samples.push_back(small_graph(i % 2, 300 + static_cast<std::uint64_t>(i)));
  }
  handles.reserve(samples.size());
  for (const acfg::Acfg& sample : samples) handles.push_back(server.submit(sample));

  for (std::size_t i = 0; i < handles.size(); ++i) {
    const Verdict verdict = handles[i].get();
    ASSERT_TRUE(verdict.ok()) << to_string(verdict.status);
    const core::Prediction direct = clf.predict(samples[i]);
    EXPECT_EQ(verdict.prediction.family_index, direct.family_index);
    ASSERT_EQ(verdict.prediction.probabilities.size(), direct.probabilities.size());
    for (std::size_t c = 0; c < direct.probabilities.size(); ++c) {
      EXPECT_NEAR(verdict.prediction.probabilities[c], direct.probabilities[c],
                  1e-9 * std::max(1.0, std::abs(direct.probabilities[c])));
    }
  }
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.completed, 6u);
  EXPECT_GE(stats.packed_batches, 1u);
}

TEST(PackedServe, PerSampleEngineNeverPacks) {
  ServeConfig config = one_worker_batching();
  config.engine = core::PredictEngine::PerSample;
  InferenceServer server(shared_classifier(), config);
  std::vector<PendingVerdict> handles;
  for (int i = 0; i < 6; ++i) {
    handles.push_back(server.submit(small_graph(i % 2, 400 + static_cast<std::uint64_t>(i))));
  }
  for (auto& handle : handles) EXPECT_TRUE(handle.get().ok());
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.completed, 6u);
  EXPECT_EQ(stats.packed_batches, 0u);
}

// Regression: every exception path of execute_batch must return the replica
// to the pool. The server shares the classifier's cached pool, so the test
// can watch lease accounting from outside.
TEST(PackedServe, LeaseReleasedWhenPackedForwardThrows) {
  core::MagicClassifier& clf = shared_classifier();
  const std::shared_ptr<core::ReplicaPool> pool = clf.replica_pool();

  {
    InferenceServer server(clf, one_worker_batching());

    // Batch of uniformly bad graphs: GraphBatch::pack succeeds (consistent
    // 2-channel batch) but the packed forward throws channel mismatch; the
    // per-item fallback then attributes an Error to every request.
    std::vector<PendingVerdict> bad;
    for (int i = 0; i < 3; ++i) bad.push_back(server.submit(bad_channel_graph()));
    for (auto& handle : bad) {
      const Verdict verdict = handle.get();
      EXPECT_EQ(verdict.status, VerdictStatus::Error);
      EXPECT_FALSE(verdict.error.empty());
    }

    // Mixed batch: pack() itself throws (inconsistent channels); healthy
    // requests must still score via the fallback.
    std::vector<PendingVerdict> mixed;
    mixed.push_back(server.submit(small_graph(0, 500)));
    mixed.push_back(server.submit(bad_channel_graph()));
    mixed.push_back(server.submit(small_graph(1, 501)));
    EXPECT_TRUE(mixed[0].get().ok());
    EXPECT_EQ(mixed[1].get().status, VerdictStatus::Error);
    EXPECT_TRUE(mixed[2].get().ok());

    // The server keeps serving after both failure modes.
    EXPECT_TRUE(server.scan(small_graph(0, 502)).ok());
    server.stop();
    // All workers joined: no lease may survive the throwing batches.
    EXPECT_EQ(pool->leased(), 0u);
  }
  EXPECT_EQ(pool->leased(), 0u);
}

}  // namespace
}  // namespace magic::serve
