#include "serve/server.hpp"

#include <chrono>
#include <vector>

#include <gtest/gtest.h>

#include "serve/serve_test_util.hpp"

namespace magic::serve {
namespace {

using namespace std::chrono_literals;
using testing::plug_graph;
using testing::shared_classifier;
using testing::small_graph;

ServeConfig quick_config() {
  ServeConfig config;
  config.workers = 2;
  config.queue_capacity = 64;
  config.max_batch = 4;
  config.batch_window = 500us;
  return config;
}

// The server must be a pure serving wrapper: same model, same verdicts.
TEST(InferenceServer, GoldenEquivalenceWithDirectPredict) {
  core::MagicClassifier& clf = shared_classifier();
  InferenceServer server(clf, quick_config());
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    const acfg::Acfg sample = small_graph(static_cast<int>(seed % 2), 10 + seed);
    const core::Prediction direct = clf.predict(sample);
    const Verdict served = server.scan(sample);
    ASSERT_TRUE(served.ok()) << to_string(served.status);
    EXPECT_EQ(served.prediction.family_index, direct.family_index);
    EXPECT_EQ(served.prediction.family_name, direct.family_name);
    ASSERT_EQ(served.prediction.probabilities.size(), direct.probabilities.size());
    for (std::size_t c = 0; c < direct.probabilities.size(); ++c) {
      EXPECT_DOUBLE_EQ(served.prediction.probabilities[c], direct.probabilities[c]);
    }
    EXPECT_GT(served.latency_ms, 0.0);
  }
}

TEST(InferenceServer, SubmitManyAllResolveOk) {
  InferenceServer server(shared_classifier(), quick_config());
  std::vector<PendingVerdict> handles;
  handles.reserve(40);
  for (int i = 0; i < 40; ++i) {
    handles.push_back(server.submit(small_graph(i % 2, 100 + static_cast<std::uint64_t>(i))));
  }
  for (auto& handle : handles) {
    const Verdict verdict = handle.get();
    EXPECT_TRUE(verdict.ok()) << to_string(verdict.status);
  }
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.submitted, 40u);
  EXPECT_EQ(stats.completed, 40u);
  EXPECT_EQ(stats.queue_depth, 0u);
  EXPECT_GT(stats.batches, 0u);
  EXPECT_GT(stats.latency_p50_ms, 0.0);
  EXPECT_GE(stats.latency_p99_ms, stats.latency_p50_ms);
}

// max_batch reached => flush immediately, well before the (huge) window.
TEST(InferenceServer, BatcherFlushesOnBatchSize) {
  ServeConfig config;
  config.workers = 1;
  config.queue_capacity = 16;
  config.max_batch = 2;
  config.batch_window = 60s;  // must never be waited out
  InferenceServer server(shared_classifier(), config);

  std::vector<PendingVerdict> handles;
  handles.reserve(4);
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < 4; ++i) {
    handles.push_back(server.submit(small_graph(i % 2, 200 + static_cast<std::uint64_t>(i))));
  }
  for (auto& handle : handles) EXPECT_TRUE(handle.get().ok());
  EXPECT_LT(std::chrono::steady_clock::now() - start, 30s);

  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.completed, 4u);
  ASSERT_GT(stats.batch_size_counts.size(), 2u);
  // Every batch was flushed by size (2), never by the 60s window.
  EXPECT_EQ(stats.batch_size_counts[2], 2u);
  EXPECT_EQ(stats.batches, 2u);
}

// No more requests coming => the batch must flush when the window expires,
// and the requests' latency includes that wait.
TEST(InferenceServer, BatcherFlushesOnWindowDeadline) {
  ServeConfig config;
  config.workers = 1;
  config.queue_capacity = 16;
  config.max_batch = 8;  // never reached
  config.batch_window = 300ms;
  InferenceServer server(shared_classifier(), config);

  const auto start = std::chrono::steady_clock::now();
  std::vector<PendingVerdict> handles;
  handles.reserve(3);
  for (int i = 0; i < 3; ++i) {
    handles.push_back(server.submit(small_graph(i % 2, 300 + static_cast<std::uint64_t>(i))));
  }
  for (auto& handle : handles) EXPECT_TRUE(handle.get().ok());
  const auto elapsed = std::chrono::steady_clock::now() - start;
  // The worker waited out the whole window before scoring.
  EXPECT_GE(elapsed, 250ms);

  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.completed, 3u);
  EXPECT_EQ(stats.batches, 1u);
  EXPECT_NEAR(stats.mean_batch_size(), 3.0, 1e-9);
}

TEST(InferenceServer, FullQueueRejectsWithStatus) {
  ServeConfig config;
  config.workers = 1;
  config.queue_capacity = 2;
  config.max_batch = 1;
  config.batch_window = 0us;
  InferenceServer server(shared_classifier(), config);

  // Occupy the single worker so the queue can actually fill up.
  PendingVerdict plug = server.submit(plug_graph());
  std::vector<PendingVerdict> handles;
  handles.reserve(12);
  for (int i = 0; i < 12; ++i) {
    handles.push_back(server.submit(small_graph(0, 400 + static_cast<std::uint64_t>(i))));
  }
  std::size_t ok = 0;
  std::size_t rejected = 0;
  for (auto& handle : handles) {
    const Verdict verdict = handle.get();
    if (verdict.ok()) ++ok;
    if (verdict.status == VerdictStatus::RejectedQueueFull) ++rejected;
    EXPECT_TRUE(verdict.ok() || verdict.status == VerdictStatus::RejectedQueueFull)
        << to_string(verdict.status);
  }
  EXPECT_TRUE(plug.get().ok());
  EXPECT_EQ(ok + rejected, 12u);
  EXPECT_GE(rejected, 1u);  // capacity 2 < 12 while the worker was busy
  EXPECT_EQ(server.stats().rejected_full, rejected);
}

TEST(InferenceServer, ExpiredDeadlineShedsLoad) {
  ServeConfig config;
  config.workers = 1;
  config.queue_capacity = 8;
  config.max_batch = 1;
  config.batch_window = 0us;
  InferenceServer server(shared_classifier(), config);

  // The plugs take many ms on the lone worker; a 1 ms deadline queued
  // behind them must be expired, not scored.
  std::vector<PendingVerdict> plugs;
  plugs.reserve(3);
  for (int i = 0; i < 3; ++i) plugs.push_back(server.submit(plug_graph()));
  PendingVerdict doomed = server.submit(small_graph(0, 500), 1ms);
  const Verdict verdict = doomed.get();
  EXPECT_EQ(verdict.status, VerdictStatus::DeadlineExpired);
  for (auto& plug : plugs) EXPECT_TRUE(plug.get().ok());
  EXPECT_EQ(server.stats().expired, 1u);
}

TEST(InferenceServer, DefaultDeadlineFromConfigApplies) {
  ServeConfig config;
  config.workers = 1;
  config.queue_capacity = 8;
  config.max_batch = 1;
  config.batch_window = 0us;
  config.default_deadline = 1ms;
  InferenceServer server(shared_classifier(), config);

  std::vector<PendingVerdict> plugs;
  plugs.reserve(3);
  for (int i = 0; i < 3; ++i) {
    plugs.push_back(server.submit(plug_graph(), 0ms));  // 0 = no deadline
  }
  PendingVerdict doomed = server.submit(small_graph(0, 600));
  EXPECT_EQ(doomed.get().status, VerdictStatus::DeadlineExpired);
  for (auto& plug : plugs) EXPECT_TRUE(plug.get().ok());
}

TEST(InferenceServer, GracefulStopDrainsEverythingQueued) {
  ServeConfig config = quick_config();
  config.queue_capacity = 64;
  InferenceServer server(shared_classifier(), config);
  std::vector<PendingVerdict> handles;
  handles.reserve(20);
  for (int i = 0; i < 20; ++i) {
    handles.push_back(server.submit(small_graph(i % 2, 700 + static_cast<std::uint64_t>(i))));
  }
  server.stop(/*drain=*/true);
  for (auto& handle : handles) {
    EXPECT_TRUE(handle.get().ok());  // drain scores everything accepted
  }
  // After stop, submissions resolve immediately with ShuttingDown.
  const Verdict late = server.submit(small_graph(0, 800)).get();
  EXPECT_EQ(late.status, VerdictStatus::ShuttingDown);
}

TEST(InferenceServer, AbortStopResolvesQueuedAsShuttingDown) {
  ServeConfig config;
  config.workers = 1;
  config.queue_capacity = 64;
  config.max_batch = 1;
  config.batch_window = 0us;
  InferenceServer server(shared_classifier(), config);

  PendingVerdict plug = server.submit(plug_graph());
  std::vector<PendingVerdict> handles;
  handles.reserve(10);
  for (int i = 0; i < 10; ++i) {
    handles.push_back(server.submit(small_graph(0, 900 + static_cast<std::uint64_t>(i))));
  }
  server.stop(/*drain=*/false);
  // Every handle resolves; whatever was still queued reports ShuttingDown.
  std::size_t shut_down = 0;
  for (auto& handle : handles) {
    const Verdict verdict = handle.get();
    EXPECT_TRUE(verdict.ok() || verdict.status == VerdictStatus::ShuttingDown)
        << to_string(verdict.status);
    if (verdict.status == VerdictStatus::ShuttingDown) ++shut_down;
  }
  EXPECT_GE(shut_down, 1u);
  const Verdict plugged = plug.get();
  EXPECT_TRUE(plugged.ok() || plugged.status == VerdictStatus::ShuttingDown);
}

TEST(InferenceServer, ScanListingRunsFullPipeline) {
  InferenceServer server(shared_classifier(), quick_config());
  const Verdict verdict = server.scan_listing(
      "401000 mov eax, 1\n"
      "401005 add eax, 2\n"
      "401008 ret\n");
  ASSERT_TRUE(verdict.ok()) << verdict.error;
  EXPECT_LT(verdict.prediction.family_index, 2u);
}

TEST(InferenceServer, BadListingResolvesAsError) {
  InferenceServer server(shared_classifier(), quick_config());
  const Verdict verdict = server.scan_listing("");
  EXPECT_EQ(verdict.status, VerdictStatus::Error);
  EXPECT_FALSE(verdict.error.empty());
  EXPECT_EQ(server.stats().failed, 1u);
}

TEST(InferenceServer, UnfittedModelThrowsAtConstruction) {
  core::MagicClassifier unfitted(testing::small_config());
  EXPECT_THROW(InferenceServer(unfitted, quick_config()), std::logic_error);
}

TEST(InferenceServer, SharesReplicaPoolWithPredictBatch) {
  core::MagicClassifier& clf = shared_classifier();
  const auto pool_before = clf.replica_pool();
  InferenceServer server(clf, quick_config());
  EXPECT_EQ(clf.replica_pool().get(), pool_before.get());
  // While the server leases its workers' replicas, predict_batch still
  // works against the same pool (it leases additional replicas).
  util::ThreadPool threads(2);
  std::vector<acfg::Acfg> batch;
  batch.reserve(6);
  for (int i = 0; i < 6; ++i) batch.push_back(small_graph(i % 2, 1000 + static_cast<std::uint64_t>(i)));
  const auto direct = clf.predict_batch(batch, threads);
  ASSERT_EQ(direct.size(), batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const Verdict served = server.scan(batch[i]);
    ASSERT_TRUE(served.ok());
    EXPECT_EQ(served.prediction.family_index, direct[i].family_index);
  }
}

TEST(PendingVerdict, InvalidHandleThrows) {
  PendingVerdict handle;
  EXPECT_FALSE(handle.valid());
  EXPECT_FALSE(handle.ready());
  EXPECT_THROW(handle.get(), std::logic_error);
}

}  // namespace
}  // namespace magic::serve
