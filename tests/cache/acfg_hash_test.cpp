// Canonical ACFG content-hash tests: golden values (the hash is a
// persisted cache key and part of the packed corpus format, so it must
// never drift across releases or platforms), permutation invariance under
// vertex relabelling, and sensitivity to any semantic change.

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "acfg/acfg.hpp"
#include "cache/acfg_hash.hpp"
#include "tensor/tensor.hpp"
#include "util/rng.hpp"

namespace magic::cache {
namespace {

acfg::Acfg make_graph(std::size_t n, std::size_t c,
                      const std::vector<std::pair<std::size_t, std::size_t>>& edges,
                      double attr_seed = 1.0) {
  acfg::Acfg g;
  std::vector<double> attrs(n * c);
  for (std::size_t i = 0; i < attrs.size(); ++i) {
    attrs[i] = attr_seed * static_cast<double>(i % 7) + static_cast<double>(i / 7);
  }
  g.attributes = tensor::Tensor({n, c}, std::move(attrs));
  g.out_edges.resize(n);
  for (const auto& [u, v] : edges) g.out_edges[u].push_back(v);
  g.label = 3;
  g.id = "golden";
  return g;
}

/// Relabels vertices by `perm` (perm[old] = new) and shuffles the order of
/// every out-edge list; attribute rows move with their vertices. The graph
/// is isomorphic with identical attributes, so the hash must not move.
acfg::Acfg relabel(const acfg::Acfg& g, const std::vector<std::size_t>& perm,
                   util::Rng& rng) {
  const std::size_t n = g.num_vertices();
  const std::size_t c = g.num_channels();
  acfg::Acfg out;
  std::vector<double> attrs(n * c);
  out.out_edges.resize(n);
  for (std::size_t u = 0; u < n; ++u) {
    const std::size_t nu = perm[u];
    for (std::size_t ch = 0; ch < c; ++ch) {
      attrs[nu * c + ch] = g.attributes.at(u, ch);
    }
    for (const std::size_t v : g.out_edges[u]) {
      out.out_edges[nu].push_back(perm[v]);
    }
  }
  for (auto& edges : out.out_edges) rng.shuffle(edges);
  out.attributes = tensor::Tensor({n, c}, std::move(attrs));
  out.label = g.label;
  out.id = g.id;
  return out;
}

TEST(AcfgHash, GoldenSmallGraph) {
  const acfg::Acfg g = make_graph(4, 3, {{0, 1}, {1, 2}, {2, 3}, {3, 0}, {0, 2}});
  const CacheKey key = acfg_content_hash(g);
  // Pinned: changing the hash algorithm invalidates every persisted packed
  // corpus and cache key. Bump the corpus-format version if this must move.
  EXPECT_EQ(key.to_hex(), "7a8c5f1b0d48998efe8e6152154816ed");
}

TEST(AcfgHash, GoldenSingleVertex) {
  const acfg::Acfg g = make_graph(1, 2, {});
  EXPECT_EQ(acfg_content_hash(g).to_hex(), "033dc7a266ae05bbd3328992a9ac8078");
}

TEST(AcfgHash, GoldenEmptyGraph) {
  acfg::Acfg g;
  g.attributes = tensor::Tensor({std::size_t{0}, std::size_t{2}});
  EXPECT_EQ(acfg_content_hash(g).to_hex(), "7da129bae3fb702f1c3ecb2ad10e8e04");
}

TEST(AcfgHash, BytesGolden) {
  const char data[] = "MAGIC packed corpus payload";
  const CacheKey key = bytes_content_hash(data, sizeof(data) - 1);
  EXPECT_EQ(key.to_hex(), "0954bafcc3c393cc80fc7259eba43edf");
}

TEST(AcfgHash, InvariantUnderRelabellingAndEdgeOrder) {
  util::Rng rng(77);
  acfg::Acfg g = make_graph(9, 4,
                            {{0, 1}, {0, 2}, {1, 3}, {2, 3}, {3, 4}, {4, 5},
                             {5, 6}, {6, 7}, {7, 8}, {8, 0}, {2, 6}, {4, 8}});
  const CacheKey original = acfg_content_hash(g);
  std::vector<std::size_t> perm(g.num_vertices());
  std::iota(perm.begin(), perm.end(), 0);
  for (int round = 0; round < 20; ++round) {
    rng.shuffle(perm);
    const acfg::Acfg shuffled = relabel(g, perm, rng);
    EXPECT_EQ(acfg_content_hash(shuffled), original) << "round " << round;
  }
}

TEST(AcfgHash, IgnoresLabelAndId) {
  acfg::Acfg g = make_graph(5, 3, {{0, 1}, {1, 2}, {2, 3}, {3, 4}});
  const CacheKey original = acfg_content_hash(g);
  g.label = 11;
  g.id = "entirely-different-sample";
  EXPECT_EQ(acfg_content_hash(g), original);
}

TEST(AcfgHash, OneBitAttributeChangeChangesHash) {
  acfg::Acfg g = make_graph(5, 3, {{0, 1}, {1, 2}, {2, 3}, {3, 4}});
  const CacheKey original = acfg_content_hash(g);
  // Smallest representable perturbation: flip the low mantissa bit of one
  // attribute. The whole point of content addressing is that this is a
  // different content.
  double v = g.attributes.at(2, 1);
  std::uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  bits ^= 1;
  std::memcpy(&v, &bits, sizeof(bits));
  g.attributes.at(2, 1) = v;
  EXPECT_NE(acfg_content_hash(g), original);
}

TEST(AcfgHash, EdgeChangesChangeHash) {
  const acfg::Acfg base = make_graph(5, 3, {{0, 1}, {1, 2}, {2, 3}, {3, 4}});
  const CacheKey original = acfg_content_hash(base);
  // Added edge.
  acfg::Acfg added = base;
  added.out_edges[0].push_back(4);
  EXPECT_NE(acfg_content_hash(added), original);
  // Redirected edge (same edge count).
  acfg::Acfg redirected = base;
  redirected.out_edges[3].back() = 0;
  EXPECT_NE(acfg_content_hash(redirected), original);
  // Reversed edge direction (in/out degrees swap).
  acfg::Acfg reversed = base;
  reversed.out_edges[3].clear();
  reversed.out_edges[4].push_back(3);
  EXPECT_NE(acfg_content_hash(reversed), original);
}

TEST(AcfgHash, VertexCountMattersEvenWithoutEdges) {
  const acfg::Acfg two = make_graph(2, 2, {});
  const acfg::Acfg three = make_graph(3, 2, {});
  EXPECT_NE(acfg_content_hash(two), acfg_content_hash(three));
}

TEST(AcfgHash, BytesHashDetectsAnyFlip) {
  std::vector<unsigned char> payload(257);
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<unsigned char>(i * 31 + 7);
  }
  const CacheKey original = bytes_content_hash(payload.data(), payload.size());
  for (const std::size_t pos : {std::size_t{0}, std::size_t{8}, std::size_t{255},
                                payload.size() - 1}) {
    std::vector<unsigned char> tampered = payload;
    tampered[pos] ^= 0x01;
    EXPECT_NE(bytes_content_hash(tampered.data(), tampered.size()), original)
        << "flip at " << pos;
  }
  // Length is part of the content.
  EXPECT_NE(bytes_content_hash(payload.data(), payload.size() - 1), original);
}

TEST(CacheKeyBasics, HexAndOrdering) {
  const CacheKey a{0x0123456789ABCDEFull, 0xFEDCBA9876543210ull};
  EXPECT_EQ(a.to_hex(), "0123456789abcdeffedcba9876543210");
  const CacheKey b{0x0123456789ABCDEFull, 0xFEDCBA9876543211ull};
  EXPECT_TRUE(a < b);
  EXPECT_NE(a, b);
  EXPECT_EQ(a, a);
}

}  // namespace
}  // namespace magic::cache
