// Concurrency stress for VerdictCache, written to be meaningful under
// ThreadSanitizer: many threads hammer overlapping key ranges with
// get/insert/clear/stats while eviction churns (the byte budget is sized so
// the working set does not fit). Assertions are deliberately coarse — the
// point is data-race freedom and internal-consistency invariants, not
// specific hit counts.

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "cache/verdict_cache.hpp"

namespace magic::cache {
namespace {

CacheKey key_of(std::uint64_t i) { return CacheKey{i * 0x9E3779B97F4A7C15ull, i}; }

TEST(VerdictCacheStress, ConcurrentGetInsertEvict) {
  const std::size_t entry_bytes = [] {
    CachedVerdict v;
    v.family_name = "stress";
    v.probabilities.assign(13, 0.0);
    return v.bytes();
  }();
  // Working set of 128 keys, room for ~24 entries: constant eviction.
  VerdictCache cache({entry_bytes * 24, /*shards=*/4});
  constexpr std::uint64_t kKeys = 128;
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 4000;

  std::atomic<std::uint64_t> observed_hits{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      std::uint64_t state = 0xABCDEF12345 + static_cast<std::uint64_t>(t);
      for (int op = 0; op < kOpsPerThread; ++op) {
        state = state * 6364136223846793005ull + 1442695040888963407ull;
        const std::uint64_t k = (state >> 33) % kKeys;
        const std::uint64_t action = (state >> 13) % 16;
        if (action < 9) {
          if (const auto hit = cache.get(key_of(k))) {
            // Value integrity: an entry read concurrently with eviction and
            // refresh must still be the self-consistent value some thread
            // inserted for this key.
            ASSERT_EQ(hit->family_index, static_cast<std::size_t>(k));
            ASSERT_EQ(hit->probabilities.size(), 13u);
            observed_hits.fetch_add(1, std::memory_order_relaxed);
          }
        } else if (action < 15) {
          CachedVerdict v;
          v.family_index = static_cast<std::size_t>(k);
          v.family_name = "stress";
          v.probabilities.assign(13, static_cast<double>(k));
          cache.insert(key_of(k), std::move(v));
        } else if (action == 15 && t == 0 && op % 512 == 0) {
          cache.clear();
        } else {
          const CacheStats stats = cache.stats();
          ASSERT_LE(stats.bytes, entry_bytes * 24);
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, observed_hits.load());
  EXPECT_GT(stats.insertions, 0u);
  EXPECT_GT(stats.evictions, 0u) << "budget was sized to force eviction";
  EXPECT_LE(stats.bytes, entry_bytes * 24);
  // Counter conservation: every lookup was either a hit or a miss.
  EXPECT_GT(stats.hits + stats.misses, 0u);
}

TEST(VerdictCacheStress, SingleShardContention) {
  // One shard = every thread fights over one mutex; maximizes lock-order
  // and splice races for TSan.
  VerdictCache cache({1 << 16, /*shards=*/1});
  constexpr int kThreads = 6;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int op = 0; op < 2000; ++op) {
        const std::uint64_t k = static_cast<std::uint64_t>((op + t) % 7);
        if (op % 3 == 0) {
          CachedVerdict v;
          v.family_index = static_cast<std::size_t>(k);
          v.probabilities.assign(4, 0.25);
          cache.insert(key_of(k), std::move(v));
        } else {
          if (const auto hit = cache.get(key_of(k))) {
            ASSERT_EQ(hit->family_index, static_cast<std::size_t>(k));
          }
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_GT(cache.stats().insertions, 0u);
}

}  // namespace
}  // namespace magic::cache
