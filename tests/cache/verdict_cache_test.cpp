// VerdictCache behavioural tests: LRU eviction order, byte-bound
// enforcement, refresh semantics, oversized refusal and counter exactness.
// shards=1 throughout the LRU tests so the eviction order is deterministic
// (with many shards each shard has its own order).

#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "cache/verdict_cache.hpp"
#include "obs/metrics.hpp"

namespace magic::cache {
namespace {

CacheKey key_of(std::uint64_t i) { return CacheKey{i, i * 1000003 + 17}; }

CachedVerdict verdict_of(std::size_t family, std::size_t probs = 13) {
  CachedVerdict v;
  v.family_index = family;
  v.family_name = "family" + std::to_string(family);
  v.probabilities.assign(probs, 1.0 / static_cast<double>(probs));
  return v;
}

TEST(VerdictCache, MissThenHitRoundTrip) {
  VerdictCache cache({/*max_bytes=*/1 << 20, /*shards=*/1});
  EXPECT_FALSE(cache.get(key_of(1)).has_value());
  cache.insert(key_of(1), verdict_of(4));
  const auto hit = cache.get(key_of(1));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->family_index, 4u);
  EXPECT_EQ(hit->family_name, "family4");
  EXPECT_EQ(hit->probabilities.size(), 13u);

  const CacheStats stats = cache.stats();
  EXPECT_TRUE(stats.enabled);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.insertions, 1u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_GT(stats.bytes, 0u);
  EXPECT_DOUBLE_EQ(stats.hit_rate(), 0.5);
}

TEST(VerdictCache, EvictsLeastRecentlyUsedFirst) {
  const std::size_t entry_bytes = verdict_of(0).bytes();
  // Budget for exactly 3 entries.
  VerdictCache cache({entry_bytes * 3 + entry_bytes / 2, 1});
  cache.insert(key_of(1), verdict_of(1));
  cache.insert(key_of(2), verdict_of(2));
  cache.insert(key_of(3), verdict_of(3));
  EXPECT_EQ(cache.stats().entries, 3u);

  // Touch 1 so 2 becomes the LRU victim.
  EXPECT_TRUE(cache.get(key_of(1)).has_value());
  cache.insert(key_of(4), verdict_of(4));

  EXPECT_TRUE(cache.get(key_of(1)).has_value());
  EXPECT_FALSE(cache.get(key_of(2)).has_value()) << "LRU entry must be evicted";
  EXPECT_TRUE(cache.get(key_of(3)).has_value());
  EXPECT_TRUE(cache.get(key_of(4)).has_value());
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.stats().entries, 3u);
}

TEST(VerdictCache, ByteBoundIsNeverExceeded) {
  const std::size_t entry_bytes = verdict_of(0).bytes();
  const std::size_t budget = entry_bytes * 4;
  VerdictCache cache({budget, 1});
  for (std::uint64_t i = 0; i < 64; ++i) {
    cache.insert(key_of(i), verdict_of(static_cast<std::size_t>(i)));
    EXPECT_LE(cache.stats().bytes, budget) << "after insert " << i;
  }
  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.insertions, 64u);
  EXPECT_EQ(stats.evictions, 64u - stats.entries);
  EXPECT_GT(stats.entries, 0u);
  EXPECT_LT(stats.entries, 64u);
}

TEST(VerdictCache, RefreshUpdatesValueWithoutGrowingEntries) {
  VerdictCache cache({1 << 20, 1});
  cache.insert(key_of(9), verdict_of(1));
  cache.insert(key_of(9), verdict_of(2, /*probs=*/40));
  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.insertions, 2u);
  EXPECT_EQ(stats.evictions, 0u);
  const auto hit = cache.get(key_of(9));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->family_index, 2u);
  EXPECT_EQ(hit->probabilities.size(), 40u);
}

TEST(VerdictCache, RefreshAlsoTouches) {
  const std::size_t entry_bytes = verdict_of(0).bytes();
  VerdictCache cache({entry_bytes * 2 + entry_bytes / 2, 1});
  cache.insert(key_of(1), verdict_of(1));
  cache.insert(key_of(2), verdict_of(2));
  cache.insert(key_of(1), verdict_of(1));  // refresh: 1 becomes MRU
  cache.insert(key_of(3), verdict_of(3));  // evicts 2, not 1
  EXPECT_TRUE(cache.get(key_of(1)).has_value());
  EXPECT_FALSE(cache.get(key_of(2)).has_value());
}

TEST(VerdictCache, OversizedEntryIsRefusedNotInserted) {
  VerdictCache cache({/*max_bytes=*/512, /*shards=*/1});
  CachedVerdict huge = verdict_of(1);
  huge.embedding.assign(4096, 0.5);  // far beyond the shard budget
  cache.insert(key_of(1), huge);
  EXPECT_FALSE(cache.get(key_of(1)).has_value());
  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.oversized, 1u);
  EXPECT_EQ(stats.insertions, 0u);
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_EQ(stats.bytes, 0u);
}

TEST(VerdictCache, EmbeddingRoundTrips) {
  VerdictCache cache({1 << 20, 2});
  CachedVerdict v = verdict_of(5);
  v.embedding = {0.25, -1.5, 3.75};
  cache.insert(key_of(42), v);
  const auto hit = cache.get(key_of(42));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->embedding, (std::vector<double>{0.25, -1.5, 3.75}));
}

TEST(VerdictCache, ClearDropsEntriesButKeepsCounters) {
  VerdictCache cache({1 << 20, 4});
  for (std::uint64_t i = 0; i < 10; ++i) {
    cache.insert(key_of(i), verdict_of(static_cast<std::size_t>(i)));
  }
  cache.clear();
  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_EQ(stats.bytes, 0u);
  EXPECT_EQ(stats.insertions, 10u);
  for (std::uint64_t i = 0; i < 10; ++i) {
    EXPECT_FALSE(cache.get(key_of(i)).has_value());
  }
}

TEST(VerdictCache, ShardCountClampedToAtLeastOne) {
  VerdictCache cache({1 << 16, /*shards=*/0});
  EXPECT_EQ(cache.shard_count(), 1u);
  cache.insert(key_of(1), verdict_of(1));
  EXPECT_TRUE(cache.get(key_of(1)).has_value());
}

TEST(VerdictCache, KeysSpreadAcrossShards) {
  VerdictCache cache({1 << 20, 8});
  EXPECT_EQ(cache.shard_count(), 8u);
  for (std::uint64_t i = 0; i < 64; ++i) {
    cache.insert(key_of(i), verdict_of(static_cast<std::size_t>(i)));
  }
  EXPECT_EQ(cache.stats().entries, 64u);
  for (std::uint64_t i = 0; i < 64; ++i) {
    ASSERT_TRUE(cache.get(key_of(i)).has_value()) << i;
  }
}

TEST(VerdictCache, StatsToJsonShape) {
  VerdictCache cache({2048, 1});
  cache.insert(key_of(1), verdict_of(1));
  cache.get(key_of(1));
  cache.get(key_of(2));
  const std::string json = cache.stats().to_json();
  EXPECT_NE(json.find("\"enabled\":true"), std::string::npos) << json;
  EXPECT_NE(json.find("\"hits\":1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"misses\":1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"hit_rate\":0.5"), std::string::npos) << json;
  EXPECT_NE(json.find("\"max_bytes\":2048"), std::string::npos) << json;
}

TEST(VerdictCache, MirrorsIntoGlobalRegistryWhenEnabled) {
  obs::MetricsRegistry::global().reset_values();
  obs::set_enabled(true);
  {
    VerdictCache cache({1 << 16, 1});
    cache.insert(key_of(1), verdict_of(1));
    cache.get(key_of(1));
    cache.get(key_of(2));
  }
  obs::set_enabled(false);
  obs::MetricsRegistry& registry = obs::MetricsRegistry::global();
  EXPECT_EQ(registry.counter("cache.hits").value(), 1u);
  EXPECT_EQ(registry.counter("cache.misses").value(), 1u);
  EXPECT_EQ(registry.counter("cache.insertions").value(), 1u);
  registry.reset_values();
}

TEST(VerdictCache, NoMirrorWhenObsDisabled) {
  obs::MetricsRegistry::global().reset_values();
  ASSERT_FALSE(obs::enabled());
  VerdictCache cache({1 << 16, 1});
  cache.insert(key_of(1), verdict_of(1));
  cache.get(key_of(1));
  EXPECT_EQ(obs::MetricsRegistry::global().counter("cache.hits").value(), 0u);
  // The per-cache snapshot still sees everything.
  EXPECT_EQ(cache.stats().hits, 1u);
}

}  // namespace
}  // namespace magic::cache
