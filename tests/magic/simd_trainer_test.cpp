// Per-ISA determinism at the training level: with the dispatch pinned to a
// single SimdLevel, the parallel trainer's bitwise loss-trajectory guarantee
// must hold at any thread count — for the scalar table AND the AVX2 table.
// (Across levels only kernel-level 1e-12 agreement is promised; a full
// training trajectory is chaotic and may diverge, so cross-level assertions
// stop at a single forward pass.)

#include <cmath>
#include <cstddef>
#include <vector>

#include <gtest/gtest.h>

#include "magic/core_test_util.hpp"
#include "magic/parallel_trainer.hpp"
#include "tensor/simd/dispatch.hpp"

namespace magic::core {
namespace {

namespace simd = magic::tensor::simd;
using testing::separable_dataset;

DgcnnConfig small_config() {
  DgcnnConfig cfg;
  cfg.num_classes = 2;
  cfg.graph_conv_channels = {8, 8};
  cfg.pooling = PoolingType::SortPooling;
  cfg.remaining = RemainingLayer::WeightedVertices;
  cfg.hidden_dim = 16;
  cfg.dropout_rate = 0.1;
  return cfg;
}

struct TrainRun {
  TrainResult result;
  std::vector<nn::Tensor> params;
};

TrainRun train_with_threads(std::size_t threads) {
  data::Dataset d = separable_dataset(12, 1);
  std::vector<std::size_t> train_idx, val_idx;
  for (std::size_t i = 0; i < d.size(); ++i) {
    (i % 5 == 0 ? val_idx : train_idx).push_back(i);
  }
  util::Rng rng(2);
  DgcnnModel model(small_config(), rng, 6);
  TrainOptions opt;
  opt.epochs = 3;
  opt.batch_size = 8;
  opt.learning_rate = 3e-3;
  opt.weight_decay = 1e-4;
  opt.seed = 5;
  opt.threads = threads;
  TrainRun run;
  run.result = train_model(model, d, train_idx, val_idx, opt);
  for (nn::Parameter* p : model.parameters()) run.params.push_back(p->value);
  return run;
}

void expect_bitwise_equal(const TrainRun& a, const TrainRun& b) {
  ASSERT_EQ(a.result.history.size(), b.result.history.size());
  for (std::size_t e = 0; e < a.result.history.size(); ++e) {
    // EXPECT_EQ on doubles: bitwise identity, not approximate agreement.
    EXPECT_EQ(a.result.history[e].train_loss, b.result.history[e].train_loss)
        << "epoch " << e;
    EXPECT_EQ(a.result.history[e].validation_loss,
              b.result.history[e].validation_loss)
        << "epoch " << e;
  }
  ASSERT_EQ(a.params.size(), b.params.size());
  for (std::size_t i = 0; i < a.params.size(); ++i) {
    ASSERT_TRUE(a.params[i].same_shape(b.params[i]));
    for (std::size_t j = 0; j < a.params[i].size(); ++j) {
      EXPECT_EQ(a.params[i][j], b.params[i][j])
          << "param " << i << " element " << j;
    }
  }
}

// Restores the probe-selected level even when an assertion fails mid-test.
class LevelGuard {
 public:
  LevelGuard() : original_(simd::active_level()) {}
  ~LevelGuard() { simd::set_level(original_); }

 private:
  simd::SimdLevel original_;
};

TEST(SimdTrainer, ScalarTableIsBitwiseThreadCountInvariant) {
  LevelGuard guard;
  simd::set_level(simd::SimdLevel::Scalar);
  const TrainRun serial = train_with_threads(1);
  const TrainRun four = train_with_threads(4);
  expect_bitwise_equal(serial, four);
}

TEST(SimdTrainer, Avx2TableIsBitwiseThreadCountInvariant) {
  if (!simd::avx2_available()) {
    GTEST_SKIP() << "AVX2 kernels unavailable on this CPU/build";
  }
  LevelGuard guard;
  simd::set_level(simd::SimdLevel::Avx2);
  const TrainRun serial = train_with_threads(1);
  const TrainRun four = train_with_threads(4);
  expect_bitwise_equal(serial, four);
}

TEST(SimdTrainer, ForwardPassAgreesAcrossLevels) {
  if (!simd::avx2_available()) {
    GTEST_SKIP() << "AVX2 kernels unavailable on this CPU/build";
  }
  LevelGuard guard;
  data::Dataset d = separable_dataset(4, 9);
  util::Rng rng(10);
  DgcnnModel model(small_config(), rng, 6);
  model.set_training(false);

  simd::set_level(simd::SimdLevel::Scalar);
  std::vector<nn::Tensor> scalar_out;
  for (const auto& sample : d.samples) scalar_out.push_back(model.forward(sample));

  simd::set_level(simd::SimdLevel::Avx2);
  for (std::size_t s = 0; s < d.samples.size(); ++s) {
    const nn::Tensor avx2_out = model.forward(d.samples[s]);
    ASSERT_TRUE(avx2_out.same_shape(scalar_out[s]));
    for (std::size_t i = 0; i < avx2_out.size(); ++i) {
      // One forward composes a handful of kernels, so allow a little
      // headroom over the single-kernel 1e-12 contract.
      const double tol = 1e-9 * std::max(1.0, std::abs(scalar_out[s][i]));
      EXPECT_NEAR(avx2_out[i], scalar_out[s][i], tol)
          << "sample " << s << " logit " << i;
    }
  }
}

}  // namespace
}  // namespace magic::core
