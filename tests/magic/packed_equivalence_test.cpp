// Equivalence suite for the packed-batch inference engine: classify() with
// PredictEngine::Packed must agree with PredictEngine::PerSample (and with
// the single-sample predict() wrapper) to 1e-9 relative tolerance across
// every model variant, graph-size mix (1..500 vertices, k smaller than the
// graph, edge-free graphs) and threading mode.

#include <cmath>
#include <cstddef>
#include <span>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "magic/classifier.hpp"
#include "magic/core_test_util.hpp"
#include "magic/graph_batch.hpp"
#include "magic/replica_pool.hpp"

namespace magic::core {
namespace {

using testing::make_graph;
using testing::separable_dataset;

DgcnnConfig base_config() {
  DgcnnConfig cfg;
  cfg.graph_conv_channels = {8, 8};
  cfg.hidden_dim = 16;
  cfg.dropout_rate = 0.1;
  return cfg;
}

DgcnnConfig sort_conv1d_config() {
  DgcnnConfig cfg = base_config();
  cfg.pooling = PoolingType::SortPooling;
  cfg.remaining = RemainingLayer::Conv1D;
  cfg.conv1d_channels_first = 4;
  cfg.conv1d_channels_second = 8;
  return cfg;
}

DgcnnConfig sort_wv_config() {
  DgcnnConfig cfg = base_config();
  cfg.pooling = PoolingType::SortPooling;
  cfg.remaining = RemainingLayer::WeightedVertices;
  return cfg;
}

DgcnnConfig amp_config() {
  DgcnnConfig cfg = base_config();
  cfg.pooling = PoolingType::AdaptivePooling;
  cfg.pooling_ratio = 0.3;
  cfg.conv2d_channels = 4;
  return cfg;
}

MagicClassifier fitted(const DgcnnConfig& cfg, std::uint64_t seed) {
  TrainOptions quick;
  quick.epochs = 3;
  quick.batch_size = 8;
  quick.learning_rate = 3e-3;
  MagicClassifier clf(cfg, quick, seed);
  clf.fit(separable_dataset(8, seed), 0.2);
  return clf;
}

/// Graph sizes spanning 1..500 vertices. Training graphs have 4..10
/// vertices, so the derived SortPooling k is at most 10 and every larger
/// entry exercises the k-smaller-than-graph truncation.
std::vector<acfg::Acfg> size_mix(std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<acfg::Acfg> mix;
  const std::size_t sizes[] = {1, 2, 3, 5, 9, 23, 57, 140, 500};
  int label = 0;
  for (std::size_t n : sizes) {
    mix.push_back(make_graph(label % 2, n, /*chain=*/label % 2 == 0, rng));
    ++label;
  }
  // Edge-free graph: every vertex isolated (propagation = self-loops only).
  acfg::Acfg isolated = make_graph(0, 11, /*chain=*/true, rng);
  for (auto& edges : isolated.out_edges) edges.clear();
  mix.push_back(isolated);
  return mix;
}

void expect_match(const std::vector<Prediction>& got,
                  const std::vector<Prediction>& want, const char* what) {
  ASSERT_EQ(got.size(), want.size()) << what;
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(got[i].family_index, want[i].family_index)
        << what << " sample " << i;
    EXPECT_EQ(got[i].family_name, want[i].family_name) << what << " sample " << i;
    ASSERT_EQ(got[i].probabilities.size(), want[i].probabilities.size());
    for (std::size_t c = 0; c < want[i].probabilities.size(); ++c) {
      const double a = got[i].probabilities[c];
      const double b = want[i].probabilities[c];
      // 1e-9 relative tolerance (probabilities live in [0, 1]).
      EXPECT_NEAR(a, b, 1e-9 * std::max(1.0, std::abs(b)))
          << what << " sample " << i << " class " << c;
    }
  }
}

class PackedEquivalence : public ::testing::TestWithParam<int> {
 protected:
  static DgcnnConfig config_for(int variant) {
    switch (variant) {
      case 0: return sort_conv1d_config();
      case 1: return sort_wv_config();
      default: return amp_config();
    }
  }
};

TEST_P(PackedEquivalence, PackedMatchesPerSampleAndPredict) {
  const MagicClassifier clf = fitted(config_for(GetParam()), 60 + GetParam());
  const std::vector<acfg::Acfg> mix = size_mix(61);

  PredictOptions per_sample;
  per_sample.engine = PredictEngine::PerSample;
  const std::vector<Prediction> baseline = clf.classify(mix, per_sample);

  // Every graph in one pack.
  PredictOptions packed;
  packed.engine = PredictEngine::Packed;
  packed.max_pack_vertices = 100000;
  expect_match(clf.classify(mix, packed), baseline, "one big pack");

  // Tight vertex budget: many packs, including one oversized graph that
  // must form its own single-graph pack.
  packed.max_pack_vertices = 64;
  expect_match(clf.classify(mix, packed), baseline, "budgeted packs");

  // The single-sample wrapper agrees sample by sample.
  for (std::size_t i = 0; i < mix.size(); ++i) {
    expect_match({clf.predict(mix[i])}, {baseline[i]}, "predict wrapper");
  }
}

TEST_P(PackedEquivalence, ThreadedClassifyMatchesSerial) {
  const MagicClassifier clf = fitted(config_for(GetParam()), 70 + GetParam());
  const std::vector<acfg::Acfg> mix = size_mix(71);

  PredictOptions serial;
  serial.threads = 1;
  serial.max_pack_vertices = 128;
  const std::vector<Prediction> baseline = clf.classify(mix, serial);

  PredictOptions threaded = serial;
  threaded.threads = 4;
  expect_match(clf.classify(mix, threaded), baseline, "4-thread packed");

  threaded.engine = PredictEngine::PerSample;
  PredictOptions serial_ps = serial;
  serial_ps.engine = PredictEngine::PerSample;
  expect_match(clf.classify(mix, threaded), clf.classify(mix, serial_ps),
               "4-thread per-sample");
}

INSTANTIATE_TEST_SUITE_P(AllVariants, PackedEquivalence,
                         ::testing::Values(0, 1, 2),
                         [](const ::testing::TestParamInfo<int>& info) {
                           switch (info.param) {
                             case 0: return "SortPoolConv1D";
                             case 1: return "SortPoolWeightedVertices";
                             default: return "AdaptiveMaxPooling";
                           }
                         });

// classify() is const and safe from many threads at once: every concurrent
// call must reproduce the single-threaded verdicts exactly.
TEST(PackedEquivalence, ConcurrentClassifyIsThreadSafe) {
  const MagicClassifier clf = fitted(sort_wv_config(), 80);
  const std::vector<acfg::Acfg> mix = size_mix(81);
  const std::vector<Prediction> baseline =
      clf.classify(mix, PredictOptions{.engine = PredictEngine::PerSample});

  constexpr int kCallers = 4;
  std::vector<std::vector<Prediction>> results(kCallers);
  std::vector<std::thread> callers;
  callers.reserve(kCallers);
  for (int t = 0; t < kCallers; ++t) {
    callers.emplace_back([&, t] {
      PredictOptions opt;
      opt.engine = t % 2 == 0 ? PredictEngine::Packed : PredictEngine::PerSample;
      opt.threads = 1 + static_cast<std::size_t>(t % 2);
      opt.max_pack_vertices = 96;
      results[static_cast<std::size_t>(t)] = clf.classify(mix, opt);
    });
  }
  for (auto& caller : callers) caller.join();
  for (int t = 0; t < kCallers; ++t) {
    expect_match(results[static_cast<std::size_t>(t)], baseline, "concurrent");
  }
}

TEST(PackedEquivalence, PredictBatchWrapperMatchesClassify) {
  const MagicClassifier clf = fitted(sort_conv1d_config(), 82);
  const std::vector<acfg::Acfg> mix = size_mix(83);
  util::ThreadPool pool(3);
  expect_match(clf.predict_batch(mix, pool),
               clf.classify(mix, PredictOptions{.engine = PredictEngine::PerSample}),
               "predict_batch wrapper");
}

TEST(PackedEquivalence, PredictPackedMatchesClassify) {
  const MagicClassifier clf = fitted(sort_wv_config(), 84);
  const std::vector<acfg::Acfg> mix = size_mix(85);
  const GraphBatch batch = GraphBatch::pack(std::span<const acfg::Acfg>(mix));
  expect_match(clf.predict_packed(batch),
               clf.classify(mix, PredictOptions{.engine = PredictEngine::PerSample}),
               "predict_packed");
}

// ---- Option and mode contracts -------------------------------------------

TEST(PackedEquivalence, ZeroPackBudgetThrowsForPackedEngineOnly) {
  const MagicClassifier clf = fitted(sort_wv_config(), 86);
  const std::vector<acfg::Acfg> mix = size_mix(87);
  PredictOptions bad;
  bad.max_pack_vertices = 0;
  EXPECT_THROW((void)clf.classify(mix, bad), std::invalid_argument);
  bad.engine = PredictEngine::PerSample;  // budget is a packed-engine knob
  EXPECT_NO_THROW((void)clf.classify(mix, bad));
}

TEST(PackedEquivalence, ClassifyEmptySpanReturnsEmpty) {
  const MagicClassifier clf = fitted(sort_wv_config(), 88);
  EXPECT_TRUE(clf.classify({}).empty());
}

TEST(PackedEquivalence, ClassifyUnfittedThrows) {
  const MagicClassifier clf(sort_wv_config());
  util::Rng rng(89);
  const std::vector<acfg::Acfg> one{make_graph(0, 5, true, rng)};
  EXPECT_THROW((void)clf.classify(one), std::logic_error);
  EXPECT_THROW((void)clf.predict_packed(
                   GraphBatch::pack(std::span<const acfg::Acfg>(one))),
               std::logic_error);
}

// predict_batch on the raw model is inference-only: while gradient caching
// is enabled there is no batched backward, so entering it must throw
// instead of silently corrupting training state.
TEST(PackedEquivalence, ModelPredictBatchRequiresEvalMode) {
  MagicClassifier clf = fitted(sort_wv_config(), 90);
  util::Rng rng(91);
  const std::vector<acfg::Acfg> one{make_graph(0, 5, true, rng)};
  const GraphBatch batch = GraphBatch::pack(std::span<const acfg::Acfg>(one));
  clf.model()->set_training(true);
  EXPECT_THROW((void)clf.model()->predict_batch(batch), std::logic_error);
  clf.model()->set_training(false);
  EXPECT_NO_THROW((void)clf.model()->predict_batch(batch));
}

TEST(PackedEquivalence, ModelPredictBatchRejectsChannelMismatch) {
  MagicClassifier clf = fitted(sort_wv_config(), 92);
  acfg::Acfg narrow;
  narrow.out_edges.assign(3, {});
  narrow.attributes = tensor::Tensor({3, 2});  // model expects 11 channels
  const std::vector<acfg::Acfg> graphs{narrow};
  const GraphBatch batch = GraphBatch::pack(std::span<const acfg::Acfg>(graphs));
  clf.model()->set_training(false);
  EXPECT_THROW((void)clf.model()->predict_batch(batch), std::invalid_argument);
}

// ---- Redesigned persistence + pool options surface ------------------------

TEST(PackedEquivalence, PathSaveLoadRoundTripPreservesClassify) {
  const MagicClassifier clf = fitted(sort_conv1d_config(), 93);
  const std::string path = ::testing::TempDir() + "/packed_equiv_model.txt";
  clf.save(path);
  const MagicClassifier restored = MagicClassifier::load(path);
  const std::vector<acfg::Acfg> mix = size_mix(94);
  expect_match(restored.classify(mix), clf.classify(mix), "path round trip");
}

TEST(PackedEquivalence, ReplicaPoolOptionsWarmsEagerly) {
  const MagicClassifier clf = fitted(sort_wv_config(), 95);
  const std::shared_ptr<ReplicaPool> pool =
      clf.replica_pool(ReplicaPoolOptions{.warm_count = 2});
  ASSERT_NE(pool, nullptr);
  EXPECT_GE(pool->size(), 2u);
  EXPECT_EQ(pool->leased(), 0u);
  // The positional compatibility overload shares the same cached pool.
  EXPECT_EQ(clf.replica_pool(1).get(), pool.get());
}

}  // namespace
}  // namespace magic::core
