// Per-operator equivalence suite for the graph-convolution zoo: every
// operator (paper / sage / tag) must
//   * agree packed-vs-per-sample to 1e-9 across the PR-5 graph-size mix
//     (the packed engine shares one block-diagonal SpMM per layer), and
//   * train bitwise thread-count-invariantly (the fixed-order gradient
//     reduction must be operator-agnostic).
// CI runs this suite under MAGIC_SIMD=scalar and native (the simd-dispatch
// matrix), so operator math is pinned on both kernel paths.

#include <cmath>
#include <cstddef>
#include <vector>

#include <gtest/gtest.h>

#include "magic/classifier.hpp"
#include "magic/core_test_util.hpp"
#include "magic/parallel_trainer.hpp"

namespace magic::core {
namespace {

using testing::make_graph;
using testing::separable_dataset;

nn::GraphConvOperator operator_for(int variant) {
  switch (variant) {
    case 0: return nn::GraphConvOperator::Paper;
    case 1: return nn::GraphConvOperator::Sage;
    default: return nn::GraphConvOperator::Tag;
  }
}

DgcnnConfig config_for(int variant) {
  DgcnnConfig cfg;
  cfg.graph_conv_channels = {8, 8};
  cfg.hidden_dim = 16;
  cfg.dropout_rate = 0.1;
  cfg.pooling = PoolingType::AdaptivePooling;
  cfg.pooling_ratio = 0.3;
  cfg.conv2d_channels = 4;
  cfg.graph_conv_op = operator_for(variant);
  cfg.tag_hops = 2;
  return cfg;
}

MagicClassifier fitted(const DgcnnConfig& cfg, std::uint64_t seed) {
  TrainOptions quick;
  quick.epochs = 3;
  quick.batch_size = 8;
  quick.learning_rate = 3e-3;
  MagicClassifier clf(cfg, quick, seed);
  clf.fit(separable_dataset(8, seed), 0.2);
  return clf;
}

/// The PR-5 size mix: 1..500 vertices plus an edge-free graph.
std::vector<acfg::Acfg> size_mix(std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<acfg::Acfg> mix;
  const std::size_t sizes[] = {1, 2, 3, 5, 9, 23, 57, 140, 500};
  int label = 0;
  for (std::size_t n : sizes) {
    mix.push_back(make_graph(label % 2, n, /*chain=*/label % 2 == 0, rng));
    ++label;
  }
  acfg::Acfg isolated = make_graph(0, 11, /*chain=*/true, rng);
  for (auto& edges : isolated.out_edges) edges.clear();
  mix.push_back(isolated);
  return mix;
}

void expect_match(const std::vector<Prediction>& got,
                  const std::vector<Prediction>& want, const char* what) {
  ASSERT_EQ(got.size(), want.size()) << what;
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(got[i].family_index, want[i].family_index)
        << what << " sample " << i;
    ASSERT_EQ(got[i].probabilities.size(), want[i].probabilities.size());
    for (std::size_t c = 0; c < want[i].probabilities.size(); ++c) {
      const double a = got[i].probabilities[c];
      const double b = want[i].probabilities[c];
      EXPECT_NEAR(a, b, 1e-9 * std::max(1.0, std::abs(b)))
          << what << " sample " << i << " class " << c;
    }
  }
}

class OperatorEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(OperatorEquivalence, PackedMatchesPerSampleAndPredict) {
  const MagicClassifier clf = fitted(config_for(GetParam()), 160 + GetParam());
  const std::vector<acfg::Acfg> mix = size_mix(161);

  PredictOptions per_sample;
  per_sample.engine = PredictEngine::PerSample;
  const std::vector<Prediction> baseline = clf.classify(mix, per_sample);

  PredictOptions packed;
  packed.engine = PredictEngine::Packed;
  packed.max_pack_vertices = 100000;
  expect_match(clf.classify(mix, packed), baseline, "one big pack");

  packed.max_pack_vertices = 64;
  expect_match(clf.classify(mix, packed), baseline, "budgeted packs");

  for (std::size_t i = 0; i < mix.size(); ++i) {
    expect_match({clf.predict(mix[i])}, {baseline[i]}, "predict wrapper");
  }
}

struct TrainRun {
  TrainResult result;
  std::vector<nn::Tensor> params;
};

TrainRun train_with_threads(int variant, std::size_t threads) {
  data::Dataset d = separable_dataset(12, 1);
  std::vector<std::size_t> train_idx, val_idx;
  for (std::size_t i = 0; i < d.size(); ++i) {
    (i % 5 == 0 ? val_idx : train_idx).push_back(i);
  }
  util::Rng rng(2);
  DgcnnModel model(config_for(variant), rng, 6);
  TrainOptions opt;
  opt.epochs = 3;
  opt.batch_size = 8;
  opt.learning_rate = 3e-3;
  opt.weight_decay = 1e-4;
  opt.seed = 5;
  opt.threads = threads;
  TrainRun run;
  run.result = train_model(model, d, train_idx, val_idx, opt);
  for (nn::Parameter* p : model.parameters()) run.params.push_back(p->value);
  return run;
}

void expect_bitwise_equal(const TrainRun& a, const TrainRun& b) {
  ASSERT_EQ(a.result.history.size(), b.result.history.size());
  for (std::size_t e = 0; e < a.result.history.size(); ++e) {
    // EXPECT_EQ on doubles: bitwise identity, not approximate agreement.
    EXPECT_EQ(a.result.history[e].train_loss, b.result.history[e].train_loss)
        << "epoch " << e;
    EXPECT_EQ(a.result.history[e].validation_loss,
              b.result.history[e].validation_loss)
        << "epoch " << e;
  }
  ASSERT_EQ(a.params.size(), b.params.size());
  for (std::size_t i = 0; i < a.params.size(); ++i) {
    ASSERT_TRUE(a.params[i].same_shape(b.params[i]));
    for (std::size_t j = 0; j < a.params[i].size(); ++j) {
      EXPECT_EQ(a.params[i][j], b.params[i][j])
          << "param " << i << " element " << j;
    }
  }
}

TEST_P(OperatorEquivalence, TrainingBitwiseIdenticalAcrossThreadCounts) {
  const TrainRun serial = train_with_threads(GetParam(), 1);
  const TrainRun four = train_with_threads(GetParam(), 4);
  expect_bitwise_equal(serial, four);
}

INSTANTIATE_TEST_SUITE_P(AllOperators, OperatorEquivalence,
                         ::testing::Values(0, 1, 2),
                         [](const ::testing::TestParamInfo<int>& info) {
                           switch (info.param) {
                             case 0: return "Paper";
                             case 1: return "Sage";
                             default: return "Tag";
                           }
                         });

}  // namespace
}  // namespace magic::core
