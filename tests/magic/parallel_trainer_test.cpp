#include "magic/parallel_trainer.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "magic/core_test_util.hpp"

namespace magic::core {
namespace {

using testing::separable_dataset;

DgcnnConfig small_config() {
  DgcnnConfig cfg;
  cfg.num_classes = 2;
  cfg.graph_conv_channels = {8, 8};
  cfg.pooling = PoolingType::SortPooling;
  cfg.remaining = RemainingLayer::WeightedVertices;
  cfg.hidden_dim = 16;
  cfg.dropout_rate = 0.1;  // nonzero: exercises per-sample mask reseeding
  return cfg;
}

TrainOptions fast_train(std::size_t epochs, std::size_t threads) {
  TrainOptions opt;
  opt.epochs = epochs;
  opt.batch_size = 8;
  opt.learning_rate = 3e-3;
  opt.weight_decay = 1e-4;
  opt.seed = 5;
  opt.threads = threads;
  return opt;
}

struct TrainRun {
  TrainResult result;
  std::vector<nn::Tensor> params;
};

TrainRun train_with_threads(std::size_t threads, std::size_t batch_size = 8) {
  data::Dataset d = separable_dataset(12, 1);
  std::vector<std::size_t> train_idx, val_idx;
  for (std::size_t i = 0; i < d.size(); ++i) {
    (i % 5 == 0 ? val_idx : train_idx).push_back(i);
  }
  util::Rng rng(2);
  DgcnnModel model(small_config(), rng, 6);
  TrainOptions opt = fast_train(4, threads);
  opt.batch_size = batch_size;
  TrainRun run;
  run.result = train_model(model, d, train_idx, val_idx, opt);
  for (nn::Parameter* p : model.parameters()) run.params.push_back(p->value);
  return run;
}

void expect_bitwise_equal(const TrainRun& a, const TrainRun& b) {
  ASSERT_EQ(a.result.history.size(), b.result.history.size());
  for (std::size_t e = 0; e < a.result.history.size(); ++e) {
    // EXPECT_EQ on doubles: bitwise identity, not approximate agreement.
    EXPECT_EQ(a.result.history[e].train_loss, b.result.history[e].train_loss)
        << "epoch " << e;
    EXPECT_EQ(a.result.history[e].validation_loss,
              b.result.history[e].validation_loss)
        << "epoch " << e;
    EXPECT_EQ(a.result.history[e].validation_accuracy,
              b.result.history[e].validation_accuracy)
        << "epoch " << e;
  }
  EXPECT_EQ(a.result.best_validation_loss, b.result.best_validation_loss);
  EXPECT_EQ(a.result.best_epoch, b.result.best_epoch);
  ASSERT_EQ(a.params.size(), b.params.size());
  for (std::size_t i = 0; i < a.params.size(); ++i) {
    ASSERT_TRUE(a.params[i].same_shape(b.params[i]));
    for (std::size_t j = 0; j < a.params[i].size(); ++j) {
      EXPECT_EQ(a.params[i][j], b.params[i][j])
          << "param " << i << " element " << j;
    }
  }
}

TEST(ParallelTrainer, BitwiseIdenticalAcrossThreadCounts) {
  const TrainRun serial = train_with_threads(1);
  const TrainRun two = train_with_threads(2);
  const TrainRun four = train_with_threads(4);
  expect_bitwise_equal(serial, two);
  expect_bitwise_equal(serial, four);
}

TEST(ParallelTrainer, FullBatchModeIsAlsoThreadCountInvariant) {
  // batch_size == 0 means one full-batch step per epoch.
  const TrainRun serial = train_with_threads(1, 0);
  const TrainRun four = train_with_threads(4, 0);
  expect_bitwise_equal(serial, four);
}

TEST(ParallelTrainer, ParallelEvaluateMatchesSerial) {
  data::Dataset d = separable_dataset(10, 3);
  std::vector<std::size_t> idx;
  for (std::size_t i = 0; i < d.size(); ++i) idx.push_back(i);
  util::Rng rng(4);
  DgcnnModel model(small_config(), rng, 6);
  const EvalResult serial = evaluate_model(model, d, idx);
  const EvalResult parallel = evaluate_model(model, d, idx, 4);
  EXPECT_EQ(serial.mean_log_loss, parallel.mean_log_loss);
  ASSERT_EQ(serial.probabilities.size(), parallel.probabilities.size());
  for (std::size_t i = 0; i < serial.probabilities.size(); ++i) {
    EXPECT_EQ(serial.probabilities[i], parallel.probabilities[i]) << "row " << i;
  }
  EXPECT_EQ(serial.labels, parallel.labels);
  EXPECT_EQ(serial.confusion.accuracy(), parallel.confusion.accuracy());
  EXPECT_EQ(serial.confusion.total(), parallel.confusion.total());
}

TEST(ParallelTrainer, ZeroThreadsResolvesToHardwareConcurrency) {
  // threads == 0 trains on all cores and must still match the serial run.
  const TrainRun serial = train_with_threads(1);
  const TrainRun automatic = train_with_threads(0);
  expect_bitwise_equal(serial, automatic);
}

TEST(ParallelTrainer, PerSampleSeedIsPureAndPositionSensitive) {
  EXPECT_EQ(per_sample_seed(7, 0, 0), per_sample_seed(7, 0, 0));
  EXPECT_NE(per_sample_seed(7, 0, 0), per_sample_seed(7, 0, 1));
  EXPECT_NE(per_sample_seed(7, 0, 0), per_sample_seed(7, 1, 0));
  EXPECT_NE(per_sample_seed(7, 0, 0), per_sample_seed(8, 0, 0));
}

TEST(ParallelTrainer, BackwardAfterEvalForwardThrows) {
  data::Dataset d = separable_dataset(2, 9);
  util::Rng rng(10);
  DgcnnModel model(small_config(), rng, 6);
  model.set_training(false);
  const nn::Tensor log_probs = model.forward(d.samples[0]);
  nn::Tensor grad = nn::Tensor::zeros(log_probs.shape());
  grad[0] = 1.0;
  // Eval-mode forward skipped the backward caches: backward must fail
  // loudly instead of producing garbage gradients.
  EXPECT_THROW(model.backward(grad), std::logic_error);
  // Re-enabling grad caching (the explain() pattern) restores backward.
  model.set_grad_enabled(true);
  model.forward(d.samples[0]);
  EXPECT_NO_THROW(model.backward(grad));
}

}  // namespace
}  // namespace magic::core
