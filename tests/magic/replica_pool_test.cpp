#include "magic/replica_pool.hpp"

#include <atomic>
#include <chrono>
#include <thread>

#include <gtest/gtest.h>

#include "magic/classifier.hpp"
#include "magic/core_test_util.hpp"
#include "util/check.hpp"
#include "util/thread_pool.hpp"

namespace magic::core {
namespace {

using testing::make_graph;
using testing::separable_dataset;

DgcnnConfig small_config() {
  DgcnnConfig cfg;
  cfg.graph_conv_channels = {8, 8};
  cfg.pooling = PoolingType::SortPooling;
  cfg.remaining = RemainingLayer::WeightedVertices;
  cfg.hidden_dim = 16;
  cfg.dropout_rate = 0.1;
  return cfg;
}

TrainOptions fast_train() {
  TrainOptions opt;
  opt.epochs = 8;
  opt.batch_size = 8;
  opt.learning_rate = 3e-3;
  return opt;
}

MagicClassifier fitted_classifier(std::uint64_t seed) {
  MagicClassifier clf(small_config(), fast_train(), seed);
  clf.fit(separable_dataset(10, seed), 0.2);
  return clf;
}

TEST(ReplicaPool, UnfittedSourceThrows) {
  MagicClassifier unfitted(small_config());
  EXPECT_THROW(ReplicaPool pool(unfitted), std::logic_error);
  EXPECT_THROW(unfitted.replica_pool(), std::logic_error);
}

TEST(ReplicaPool, LeasesAreExclusiveAndReturnOnRelease) {
  MagicClassifier clf = fitted_classifier(40);
  ReplicaPool pool(clf);
  EXPECT_EQ(pool.size(), 0u);
  {
    const ReplicaPool::Lease a = pool.acquire();
    const ReplicaPool::Lease b = pool.acquire();
    ASSERT_TRUE(a.valid());
    ASSERT_TRUE(b.valid());
    EXPECT_NE(&*a, &*b);  // two live leases never share a replica
    EXPECT_EQ(pool.size(), 2u);
    EXPECT_EQ(pool.leased(), 2u);
  }
  EXPECT_EQ(pool.leased(), 0u);
  // Released replicas are reused, not re-materialized.
  const ReplicaPool::Lease again = pool.acquire();
  EXPECT_EQ(pool.size(), 2u);
}

TEST(ReplicaPool, WarmMaterializesEagerly) {
  MagicClassifier clf = fitted_classifier(41);
  ReplicaPool pool(clf, 3);
  EXPECT_EQ(pool.size(), 3u);
  EXPECT_EQ(pool.leased(), 0u);
  pool.warm(2);  // never shrinks
  EXPECT_EQ(pool.size(), 3u);
}

TEST(ReplicaPool, ReplicasPredictIdenticallyToSource) {
  MagicClassifier clf = fitted_classifier(42);
  ReplicaPool pool(clf, 2);
  util::Rng rng(43);
  for (int label = 0; label < 2; ++label) {
    const acfg::Acfg g = make_graph(label, 7, label == 0, rng);
    const Prediction direct = clf.predict(g);
    const ReplicaPool::Lease replica = pool.acquire();
    const Prediction cloned = replica->predict(g);
    EXPECT_EQ(cloned.family_index, direct.family_index);
    ASSERT_EQ(cloned.probabilities.size(), direct.probabilities.size());
    for (std::size_t c = 0; c < direct.probabilities.size(); ++c) {
      EXPECT_DOUBLE_EQ(cloned.probabilities[c], direct.probabilities[c]);
    }
  }
}

TEST(MagicClassifier, ReplicaPoolCachedAcrossPredictBatchCalls) {
  MagicClassifier clf = fitted_classifier(44);
  util::ThreadPool pool(2);
  util::Rng rng(45);
  std::vector<acfg::Acfg> batch;
  for (int i = 0; i < 6; ++i) batch.push_back(make_graph(i % 2, 6, i % 2 == 0, rng));

  const auto first = clf.predict_batch(batch, pool);
  const std::shared_ptr<ReplicaPool> cached = clf.replica_pool();
  ASSERT_NE(cached, nullptr);
  EXPECT_GE(cached->size(), 1u);

  const auto second = clf.predict_batch(batch, pool);
  // Same pool object: no re-serialization on the second call.
  EXPECT_EQ(clf.replica_pool().get(), cached.get());
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].family_index, second[i].family_index);
  }
}

TEST(MagicClassifier, RefitInvalidatesCachedReplicaPool) {
  MagicClassifier clf = fitted_classifier(46);
  const std::shared_ptr<ReplicaPool> before = clf.replica_pool(1);
  clf.fit(separable_dataset(10, 47), 0.2);
  const std::shared_ptr<ReplicaPool> after = clf.replica_pool(1);
  EXPECT_NE(before.get(), after.get());  // stale clones must not survive a retrain
  // The old pool stays usable for whoever still holds it (shared_ptr), and
  // the new pool reflects the new weights.
  util::Rng rng(48);
  const acfg::Acfg g = make_graph(0, 6, true, rng);
  const ReplicaPool::Lease replica = after->acquire();
  EXPECT_EQ(replica->predict(g).family_index, clf.predict(g).family_index);
}

TEST(DgcnnModel, ConcurrentForwardOnOneInstanceThrowsInCheckedBuild) {
  MagicClassifier clf = fitted_classifier(49);
  util::Rng rng(50);
  // Big enough that the first forward is still running when the second
  // thread enters it.
  const acfg::Acfg big = make_graph(0, 4000, true, rng);
  const acfg::Acfg small = make_graph(0, 6, true, rng);

  EXPECT_FALSE(clf.model()->forward_in_flight());
  clf.model()->set_training(false);
  std::thread first([&] { (void)clf.model()->forward(big); });
  // Wait for the first forward to actually be in flight (the 4000-vertex
  // pass runs for many milliseconds; bound the wait anyway).
  const auto give_up = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  bool observed = false;
  while (std::chrono::steady_clock::now() < give_up) {
    if (clf.model()->forward_in_flight()) {
      observed = true;
      break;
    }
    std::this_thread::yield();
  }
  if (observed) {
    // Entering forward on the same instance from this thread must trip the
    // guard before any layer state is touched.
    EXPECT_THROW((void)clf.model()->forward(small), util::CheckError);
  }
  first.join();
  EXPECT_FALSE(clf.model()->forward_in_flight());
  // The guard clears with the owning forward: the model is usable again.
  EXPECT_NO_THROW((void)clf.predict(small));
}

}  // namespace
}  // namespace magic::core
