#include "magic/graph_batch.hpp"

#include <span>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "magic/core_test_util.hpp"
#include "tensor/sparse.hpp"
#include "tensor/tensor.hpp"

namespace magic::core {
namespace {

using testing::make_graph;

/// A chain graph with `channels` attribute channels whose entries are a
/// recognizable ramp (fill, fill+1, ...), so copy bugs surface as value
/// mismatches rather than silent zeros.
acfg::Acfg ramp_graph(std::size_t n, std::size_t channels, double fill) {
  acfg::Acfg g;
  g.out_edges.assign(n, {});
  for (std::size_t i = 0; i + 1 < n; ++i) g.out_edges[i].push_back(i + 1);
  g.attributes = tensor::Tensor({n, channels});
  for (std::size_t i = 0; i < g.attributes.size(); ++i) {
    g.attributes[i] = fill + static_cast<double>(i);
  }
  return g;
}

TEST(GraphBatch, PackRejectsEmptyBatch) {
  EXPECT_THROW(GraphBatch::pack(std::span<const acfg::Acfg>{}),
               std::invalid_argument);
  EXPECT_THROW(GraphBatch::pack(std::span<const acfg::Acfg* const>{}),
               std::invalid_argument);
}

TEST(GraphBatch, PackRejectsEmptyGraph) {
  std::vector<acfg::Acfg> graphs;
  graphs.push_back(ramp_graph(3, 2, 0.0));
  graphs.emplace_back();  // zero vertices
  EXPECT_THROW(GraphBatch::pack(std::span<const acfg::Acfg>(graphs)),
               std::invalid_argument);
}

TEST(GraphBatch, PackRejectsChannelMismatch) {
  std::vector<acfg::Acfg> graphs;
  graphs.push_back(ramp_graph(3, 2, 0.0));
  graphs.push_back(ramp_graph(4, 5, 0.0));
  EXPECT_THROW(GraphBatch::pack(std::span<const acfg::Acfg>(graphs)),
               std::invalid_argument);
}

TEST(GraphBatch, PackRejectsAttributeRowMismatch) {
  std::vector<acfg::Acfg> graphs;
  graphs.push_back(ramp_graph(3, 2, 0.0));
  graphs.back().attributes = tensor::Tensor({2, 2});  // 3 vertices, 2 rows
  EXPECT_THROW(GraphBatch::pack(std::span<const acfg::Acfg>(graphs)),
               std::invalid_argument);
}

TEST(GraphBatch, PackRejectsOutOfRangeEdgeTarget) {
  std::vector<acfg::Acfg> graphs;
  graphs.push_back(ramp_graph(3, 2, 0.0));
  graphs.back().out_edges[1].push_back(7);  // no vertex 7 in a 3-graph
  EXPECT_THROW(GraphBatch::pack(std::span<const acfg::Acfg>(graphs)),
               std::invalid_argument);
}

TEST(GraphBatch, PackLayoutConcatenatesRowsAndShiftsEdges) {
  std::vector<acfg::Acfg> graphs;
  graphs.push_back(ramp_graph(3, 2, 10.0));
  graphs.push_back(ramp_graph(4, 2, 100.0));
  const GraphBatch batch = GraphBatch::pack(std::span<const acfg::Acfg>(graphs));

  EXPECT_EQ(batch.size(), 2u);
  EXPECT_EQ(batch.total_vertices(), 7u);
  EXPECT_EQ(batch.num_channels(), 2u);
  ASSERT_EQ(batch.offsets(), (std::vector<std::size_t>{0, 3, 7}));
  EXPECT_EQ(batch.offset(1), 3u);
  EXPECT_EQ(batch.vertices(0), 3u);
  EXPECT_EQ(batch.vertices(1), 4u);

  // Attribute rows are verbatim copies, in order.
  const tensor::Tensor& attrs = batch.attributes();
  ASSERT_EQ(attrs.dim(0), 7u);
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_EQ(attrs[i], graphs[0].attributes[i]);
  }
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(attrs[6 + i], graphs[1].attributes[i]);
  }

  // Second graph's chain edges are shifted by its base offset of 3.
  const auto& edges = batch.out_edges();
  ASSERT_EQ(edges.size(), 7u);
  EXPECT_EQ(edges[0], (std::vector<std::size_t>{1}));
  EXPECT_EQ(edges[2], (std::vector<std::size_t>{}));
  EXPECT_EQ(edges[3], (std::vector<std::size_t>{4}));
  EXPECT_EQ(edges[5], (std::vector<std::size_t>{6}));
  EXPECT_EQ(edges[6], (std::vector<std::size_t>{}));
}

TEST(GraphBatch, PointerPackMatchesValuePack) {
  std::vector<acfg::Acfg> graphs;
  graphs.push_back(ramp_graph(2, 3, 1.0));
  graphs.push_back(ramp_graph(5, 3, 2.0));
  const GraphBatch by_value = GraphBatch::pack(std::span<const acfg::Acfg>(graphs));
  std::vector<const acfg::Acfg*> ptrs{&graphs[0], &graphs[1]};
  const GraphBatch by_ptr =
      GraphBatch::pack(std::span<const acfg::Acfg* const>(ptrs));
  EXPECT_EQ(by_ptr.offsets(), by_value.offsets());
  EXPECT_EQ(by_ptr.out_edges(), by_value.out_edges());
  ASSERT_EQ(by_ptr.attributes().size(), by_value.attributes().size());
  for (std::size_t i = 0; i < by_value.attributes().size(); ++i) {
    EXPECT_EQ(by_ptr.attributes()[i], by_value.attributes()[i]);
  }
}

// ---- Raw-parts constructor: every packing invariant is enforced. ----------

GraphBatch valid_parts() {
  tensor::Tensor attrs({5, 2});
  std::vector<std::size_t> offsets{0, 2, 5};
  std::vector<std::vector<std::size_t>> edges{{1}, {}, {3, 4}, {}, {2}};
  return GraphBatch(std::move(attrs), std::move(offsets), std::move(edges));
}

TEST(GraphBatch, CtorAcceptsValidParts) {
  const GraphBatch batch = valid_parts();
  EXPECT_EQ(batch.size(), 2u);
  EXPECT_EQ(batch.total_vertices(), 5u);
}

TEST(GraphBatch, CtorRejectsTooFewOffsets) {
  EXPECT_THROW(GraphBatch(tensor::Tensor({5, 2}), {0},
                          std::vector<std::vector<std::size_t>>(5)),
               std::invalid_argument);
}

TEST(GraphBatch, CtorRejectsOffsetsNotStartingAtZero) {
  EXPECT_THROW(GraphBatch(tensor::Tensor({5, 2}), {1, 2, 5},
                          std::vector<std::vector<std::size_t>>(5)),
               std::invalid_argument);
}

TEST(GraphBatch, CtorRejectsNonIncreasingOffsets) {
  EXPECT_THROW(GraphBatch(tensor::Tensor({5, 2}), {0, 2, 2, 5},
                          std::vector<std::vector<std::size_t>>(5)),
               std::invalid_argument);
}

TEST(GraphBatch, CtorRejectsAttributeRowMismatch) {
  // Offsets promise 6 packed rows; attributes only carry 5.
  EXPECT_THROW(GraphBatch(tensor::Tensor({5, 2}), {0, 2, 6},
                          std::vector<std::vector<std::size_t>>(6)),
               std::invalid_argument);
}

TEST(GraphBatch, CtorRejectsAdjacencySizeMismatch) {
  EXPECT_THROW(GraphBatch(tensor::Tensor({5, 2}), {0, 2, 5},
                          std::vector<std::vector<std::size_t>>(4)),
               std::invalid_argument);
}

TEST(GraphBatch, CtorRejectsCrossSegmentEdge) {
  // Vertex 1 lives in segment [0, 2) but points at vertex 3 in segment [2, 5).
  std::vector<std::vector<std::size_t>> edges{{1}, {3}, {}, {}, {}};
  EXPECT_THROW(GraphBatch(tensor::Tensor({5, 2}), {0, 2, 5}, std::move(edges)),
               std::invalid_argument);
}

// The packed operator must be exactly block diagonal: multiplying the packed
// attributes equals multiplying each graph's own operator by its own rows.
TEST(GraphBatch, PropagationOperatorIsBlockDiagonal) {
  util::Rng rng(7);
  std::vector<acfg::Acfg> graphs;
  graphs.push_back(make_graph(0, 4, /*chain=*/true, rng));
  graphs.push_back(make_graph(1, 6, /*chain=*/false, rng));
  graphs.push_back(make_graph(0, 3, /*chain=*/true, rng));
  const GraphBatch batch = GraphBatch::pack(std::span<const acfg::Acfg>(graphs));

  for (bool normalize : {true, false}) {
    const tensor::Tensor packed =
        batch.propagation_operator(normalize).multiply(batch.attributes());
    for (std::size_t gi = 0; gi < graphs.size(); ++gi) {
      const tensor::SparseMatrix own =
          normalize
              ? tensor::SparseMatrix::propagation_operator(graphs[gi].out_edges)
              : tensor::SparseMatrix::augmented_adjacency(graphs[gi].out_edges);
      const tensor::Tensor expected = own.multiply(graphs[gi].attributes);
      const std::size_t base = batch.offset(gi) * batch.num_channels();
      for (std::size_t i = 0; i < expected.size(); ++i) {
        EXPECT_DOUBLE_EQ(packed[base + i], expected[i])
            << "graph " << gi << " element " << i
            << " normalize=" << normalize;
      }
    }
  }
}

}  // namespace
}  // namespace magic::core
