// Serialization format edge cases beyond the classifier round-trip tests.

#include <sstream>

#include <gtest/gtest.h>

#include "magic/classifier.hpp"
#include "magic/core_test_util.hpp"

namespace magic::core {
namespace {

using testing::separable_dataset;

MagicClassifier fitted_classifier(DgcnnConfig cfg, std::uint64_t seed) {
  data::Dataset d = separable_dataset(6, seed);
  TrainOptions quick;
  quick.epochs = 2;
  quick.learning_rate = 1e-3;
  MagicClassifier clf(cfg, quick, seed);
  clf.fit(d, 0.2);
  return clf;
}

DgcnnConfig wv_config() {
  DgcnnConfig cfg;
  cfg.graph_conv_channels = {4, 4};
  cfg.pooling = PoolingType::SortPooling;
  cfg.remaining = RemainingLayer::WeightedVertices;
  cfg.hidden_dim = 8;
  return cfg;
}

TEST(ModelIo, HeaderCarriesConfigFlags) {
  DgcnnConfig cfg = wv_config();
  cfg.log1p_attributes = false;
  cfg.normalize_propagation = false;
  MagicClassifier clf = fitted_classifier(cfg, 1);
  std::stringstream ss;
  clf.save(ss);
  const std::string text = ss.str();
  EXPECT_NE(text.find("MAGIC-MODEL v1"), std::string::npos);
  EXPECT_NE(text.find("log1p 0"), std::string::npos);
  EXPECT_NE(text.find("norm 0"), std::string::npos);
  EXPECT_NE(text.find("pooling sort"), std::string::npos);

  MagicClassifier restored = MagicClassifier::load(ss);
  EXPECT_FALSE(restored.config().log1p_attributes);
  EXPECT_FALSE(restored.config().normalize_propagation);
}

TEST(ModelIo, ConfigFlagsAffectRestoredPredictions) {
  // A model saved with normalization off must predict identically after
  // reload (i.e. the flag actually round-trips into the rebuilt model).
  DgcnnConfig cfg = wv_config();
  cfg.normalize_propagation = false;
  MagicClassifier clf = fitted_classifier(cfg, 2);
  std::stringstream ss;
  clf.save(ss);
  MagicClassifier restored = MagicClassifier::load(ss);
  util::Rng rng(3);
  acfg::Acfg g = testing::make_graph(0, 8, false, rng);
  const auto a = clf.predict(g);
  const auto b = restored.predict(g);
  ASSERT_EQ(a.probabilities.size(), b.probabilities.size());
  for (std::size_t c = 0; c < a.probabilities.size(); ++c) {
    EXPECT_NEAR(a.probabilities[c], b.probabilities[c], 1e-12);
  }
}

TEST(ModelIo, RejectsParameterCountMismatch) {
  MagicClassifier clf = fitted_classifier(wv_config(), 4);
  std::stringstream ss;
  clf.save(ss);
  std::string text = ss.str();
  // Corrupt the parameter count.
  const auto pos = text.find("params ");
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, 8, "params 1");
  std::stringstream corrupted(text);
  EXPECT_THROW(MagicClassifier::load(corrupted), std::runtime_error);
}

TEST(ModelIo, RejectsUnknownPoolingToken) {
  MagicClassifier clf = fitted_classifier(wv_config(), 5);
  std::stringstream ss;
  clf.save(ss);
  std::string text = ss.str();
  const auto pos = text.find("pooling sort");
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, 12, "pooling blub");
  std::stringstream corrupted(text);
  EXPECT_THROW(MagicClassifier::load(corrupted), std::runtime_error);
}

TEST(ModelIo, SaveIsDeterministic) {
  MagicClassifier clf = fitted_classifier(wv_config(), 6);
  std::stringstream a, b;
  clf.save(a);
  clf.save(b);
  EXPECT_EQ(a.str(), b.str());
}

}  // namespace
}  // namespace magic::core
