// Serialization format edge cases beyond the classifier round-trip tests.

#include <sstream>

#include <gtest/gtest.h>

#include "magic/classifier.hpp"
#include "magic/core_test_util.hpp"

namespace magic::core {
namespace {

using testing::separable_dataset;

MagicClassifier fitted_classifier(DgcnnConfig cfg, std::uint64_t seed) {
  data::Dataset d = separable_dataset(6, seed);
  TrainOptions quick;
  quick.epochs = 2;
  quick.learning_rate = 1e-3;
  MagicClassifier clf(cfg, quick, seed);
  clf.fit(d, 0.2);
  return clf;
}

DgcnnConfig wv_config() {
  DgcnnConfig cfg;
  cfg.graph_conv_channels = {4, 4};
  cfg.pooling = PoolingType::SortPooling;
  cfg.remaining = RemainingLayer::WeightedVertices;
  cfg.hidden_dim = 8;
  return cfg;
}

TEST(ModelIo, HeaderCarriesConfigFlags) {
  DgcnnConfig cfg = wv_config();
  cfg.log1p_attributes = false;
  cfg.normalize_propagation = false;
  MagicClassifier clf = fitted_classifier(cfg, 1);
  std::stringstream ss;
  clf.save(ss);
  const std::string text = ss.str();
  EXPECT_NE(text.find("MAGIC-MODEL v3"), std::string::npos);
  EXPECT_NE(text.find("log1p 0"), std::string::npos);
  EXPECT_NE(text.find("norm 0"), std::string::npos);
  EXPECT_NE(text.find("pooling sort"), std::string::npos);
  EXPECT_NE(text.find("op paper"), std::string::npos);
  EXPECT_NE(text.find("tag_hops 2"), std::string::npos);

  MagicClassifier restored = MagicClassifier::load(ss);
  EXPECT_FALSE(restored.config().log1p_attributes);
  EXPECT_FALSE(restored.config().normalize_propagation);
}

TEST(ModelIo, ConfigFlagsAffectRestoredPredictions) {
  // A model saved with normalization off must predict identically after
  // reload (i.e. the flag actually round-trips into the rebuilt model).
  DgcnnConfig cfg = wv_config();
  cfg.normalize_propagation = false;
  MagicClassifier clf = fitted_classifier(cfg, 2);
  std::stringstream ss;
  clf.save(ss);
  MagicClassifier restored = MagicClassifier::load(ss);
  util::Rng rng(3);
  acfg::Acfg g = testing::make_graph(0, 8, false, rng);
  const auto a = clf.predict(g);
  const auto b = restored.predict(g);
  ASSERT_EQ(a.probabilities.size(), b.probabilities.size());
  for (std::size_t c = 0; c < a.probabilities.size(); ++c) {
    EXPECT_NEAR(a.probabilities[c], b.probabilities[c], 1e-12);
  }
}

TEST(ModelIo, RejectsParameterCountMismatch) {
  MagicClassifier clf = fitted_classifier(wv_config(), 4);
  std::stringstream ss;
  clf.save(ss);
  std::string text = ss.str();
  // Corrupt the parameter count.
  const auto pos = text.find("params ");
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, 8, "params 1");
  std::stringstream corrupted(text);
  EXPECT_THROW(MagicClassifier::load(corrupted), std::runtime_error);
}

TEST(ModelIo, RejectsUnknownPoolingToken) {
  MagicClassifier clf = fitted_classifier(wv_config(), 5);
  std::stringstream ss;
  clf.save(ss);
  std::string text = ss.str();
  const auto pos = text.find("pooling sort");
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, 12, "pooling blub");
  std::stringstream corrupted(text);
  EXPECT_THROW(MagicClassifier::load(corrupted), std::runtime_error);
}

TEST(ModelIo, SaveIsDeterministic) {
  MagicClassifier clf = fitted_classifier(wv_config(), 6);
  std::stringstream a, b;
  clf.save(a);
  clf.save(b);
  EXPECT_EQ(a.str(), b.str());
}

MagicClassifier fitted_with_names(std::vector<std::string> names,
                                  std::uint64_t seed) {
  data::Dataset d = testing::separable_dataset(6, seed);
  d.family_names = std::move(names);
  TrainOptions quick;
  quick.epochs = 2;
  quick.learning_rate = 1e-3;
  MagicClassifier clf(wv_config(), quick, seed);
  clf.fit(d, 0.2);
  return clf;
}

TEST(ModelIo, SpacedFamilyNamesRoundTrip) {
  // v1 wrote one bare name per line but read with operator>>, so a space
  // split one name into several and cascaded into the following entries.
  MagicClassifier clf =
      fitted_with_names({"Trojan Horse Generic", "Benign  (two spaces)"}, 7);
  std::stringstream ss;
  clf.save(ss);
  MagicClassifier restored = MagicClassifier::load(ss);
  ASSERT_EQ(restored.family_names().size(), 2u);
  EXPECT_EQ(restored.family_names()[0], "Trojan Horse Generic");
  EXPECT_EQ(restored.family_names()[1], "Benign  (two spaces)");

  // And predictions are bit-identical after the round trip.
  util::Rng rng(8);
  acfg::Acfg g = testing::make_graph(1, 7, true, rng);
  const auto a = clf.predict(g);
  const auto b = restored.predict(g);
  EXPECT_EQ(a.family_index, b.family_index);
  EXPECT_EQ(a.family_name, b.family_name);
  ASSERT_EQ(a.probabilities.size(), b.probabilities.size());
  for (std::size_t c = 0; c < a.probabilities.size(); ++c) {
    EXPECT_EQ(a.probabilities[c], b.probabilities[c]);  // bitwise
  }
}

TEST(ModelIo, Utf8FamilyNamesRoundTrip) {
  MagicClassifier clf =
      fitted_with_names({"Троян Общий", "良性 プログラム"}, 9);
  std::stringstream ss;
  clf.save(ss);
  MagicClassifier restored = MagicClassifier::load(ss);
  ASSERT_EQ(restored.family_names().size(), 2u);
  EXPECT_EQ(restored.family_names()[0], "Троян Общий");
  EXPECT_EQ(restored.family_names()[1], "良性 プログラム");
}

/// Strips the v3-only " op <name> tag_hops <k>" header tokens, producing the
/// v1/v2 header layout.
std::string strip_operator_tokens(std::string text) {
  const auto op_pos = text.find(" op ");
  EXPECT_NE(op_pos, std::string::npos);
  const auto classes_pos = text.find(" classes ", op_pos);
  EXPECT_NE(classes_pos, std::string::npos);
  text.erase(op_pos, classes_pos - op_pos);
  return text;
}

TEST(ModelIo, LoadsLegacyV1Checkpoint) {
  // Rewrite a fresh v3 checkpoint into the v1 layout (bare names, which is
  // all v1 could round-trip; no operator tokens) and check the legacy
  // reader still works.
  MagicClassifier clf = fitted_classifier(wv_config(), 10);
  std::stringstream ss;
  clf.save(ss);
  std::string text = strip_operator_tokens(ss.str());
  const auto header = text.find("MAGIC-MODEL v3");
  ASSERT_NE(header, std::string::npos);
  text.replace(header, 14, "MAGIC-MODEL v1");
  for (const auto& name : clf.family_names()) {
    const std::string prefixed = std::to_string(name.size()) + " " + name;
    const auto pos = text.find(prefixed);
    ASSERT_NE(pos, std::string::npos);
    text.replace(pos, prefixed.size(), name);
  }
  std::stringstream legacy(text);
  MagicClassifier restored = MagicClassifier::load(legacy);
  EXPECT_EQ(restored.family_names(), clf.family_names());

  util::Rng rng(11);
  acfg::Acfg g = testing::make_graph(0, 6, false, rng);
  const auto a = clf.predict(g);
  const auto b = restored.predict(g);
  for (std::size_t c = 0; c < a.probabilities.size(); ++c) {
    EXPECT_EQ(a.probabilities[c], b.probabilities[c]);
  }
}

TEST(ModelIo, RejectsUnsupportedVersion) {
  MagicClassifier clf = fitted_classifier(wv_config(), 12);
  std::stringstream ss;
  clf.save(ss);
  std::string text = ss.str();
  text.replace(text.find("MAGIC-MODEL v3"), 14, "MAGIC-MODEL v9");
  std::stringstream corrupted(text);
  try {
    MagicClassifier::load(corrupted);
    FAIL() << "expected rejection of version v9";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("unsupported version"), std::string::npos)
        << e.what();
  }
}

TEST(ModelIo, RejectsRenamedParameter) {
  MagicClassifier clf = fitted_classifier(wv_config(), 13);
  std::stringstream ss;
  clf.save(ss);
  std::string text = ss.str();
  // The first parameter header is the line after "params N".
  auto pos = text.find("params ");
  ASSERT_NE(pos, std::string::npos);
  pos = text.find('\n', pos) + 1;
  const auto name_end = text.find(' ', pos);
  ASSERT_NE(name_end, std::string::npos);
  text.replace(pos, name_end - pos, "bogus_tensor");
  std::stringstream corrupted(text);
  try {
    MagicClassifier::load(corrupted);
    FAIL() << "expected rejection of renamed parameter";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("name mismatch"), std::string::npos) << what;
    EXPECT_NE(what.find("bogus_tensor"), std::string::npos) << what;
  }
}

TEST(ModelIo, LoadsV2CheckpointAsPaperOperator) {
  // A pre-zoo v2 file (no operator tokens) must load as PaperGraphConv and
  // predict bit-identically — the format bump cannot orphan old models.
  MagicClassifier clf = fitted_classifier(wv_config(), 20);
  std::stringstream ss;
  clf.save(ss);
  std::string text = strip_operator_tokens(ss.str());
  const auto header = text.find("MAGIC-MODEL v3");
  ASSERT_NE(header, std::string::npos);
  text.replace(header, 14, "MAGIC-MODEL v2");
  std::stringstream legacy(text);
  MagicClassifier restored = MagicClassifier::load(legacy);
  EXPECT_EQ(restored.config().graph_conv_op, nn::GraphConvOperator::Paper);

  util::Rng rng(21);
  acfg::Acfg g = testing::make_graph(0, 6, false, rng);
  const auto a = clf.predict(g);
  const auto b = restored.predict(g);
  ASSERT_EQ(a.probabilities.size(), b.probabilities.size());
  for (std::size_t c = 0; c < a.probabilities.size(); ++c) {
    EXPECT_EQ(a.probabilities[c], b.probabilities[c]);  // bitwise
  }
}

TEST(ModelIo, SageAndTagCheckpointsRoundTripBitwise) {
  for (auto kind : {nn::GraphConvOperator::Sage, nn::GraphConvOperator::Tag}) {
    DgcnnConfig cfg = wv_config();
    cfg.graph_conv_op = kind;
    cfg.tag_hops = 3;
    MagicClassifier clf = fitted_classifier(cfg, 22);
    std::stringstream ss;
    clf.save(ss);
    const std::string text = ss.str();
    const std::string tag =
        std::string("op ") + nn::graph_conv_operator_name(kind);
    EXPECT_NE(text.find(tag), std::string::npos) << text.substr(0, 200);
    EXPECT_NE(text.find("tag_hops 3"), std::string::npos);

    MagicClassifier restored = MagicClassifier::load(ss);
    EXPECT_EQ(restored.config().graph_conv_op, kind);
    EXPECT_EQ(restored.config().tag_hops, 3u);
    util::Rng rng(23);
    acfg::Acfg g = testing::make_graph(1, 9, true, rng);
    const auto a = clf.predict(g);
    const auto b = restored.predict(g);
    EXPECT_EQ(a.family_index, b.family_index);
    ASSERT_EQ(a.probabilities.size(), b.probabilities.size());
    for (std::size_t c = 0; c < a.probabilities.size(); ++c) {
      EXPECT_EQ(a.probabilities[c], b.probabilities[c]);  // bitwise
    }
  }
}

TEST(ModelIo, RejectsMismatchedOperator) {
  // Header claims sage but the stored weights are the paper operator's: the
  // rebuilt model expects 'sage_conv.weight' and the per-parameter name
  // check must refuse to pour paper weights into a different formula.
  MagicClassifier clf = fitted_classifier(wv_config(), 24);
  std::stringstream ss;
  clf.save(ss);
  std::string text = ss.str();
  const auto pos = text.find("op paper");
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, 8, "op sage");
  std::stringstream corrupted(text);
  try {
    MagicClassifier::load(corrupted);
    FAIL() << "expected rejection of operator/weights mismatch";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("name mismatch"), std::string::npos) << what;
    EXPECT_NE(what.find("graph_conv.weight"), std::string::npos) << what;
  }
}

TEST(ModelIo, RejectsUnknownOperatorToken) {
  MagicClassifier clf = fitted_classifier(wv_config(), 25);
  std::stringstream ss;
  clf.save(ss);
  std::string text = ss.str();
  const auto pos = text.find("op paper");
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, 8, "op gat  ");
  std::stringstream corrupted(text);
  try {
    MagicClassifier::load(corrupted);
    FAIL() << "expected rejection of unknown operator";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("operator"), std::string::npos)
        << e.what();
  }
}

TEST(ModelIo, RejectsFamilyTableClassCountMismatch) {
  MagicClassifier clf = fitted_classifier(wv_config(), 14);
  std::stringstream ss;
  clf.save(ss);
  std::string text = ss.str();
  // Drop one family entry and shrink the declared count: the table no
  // longer matches the model's `classes` field.
  const std::string& last = clf.family_names().back();
  const std::string entry = std::to_string(last.size()) + " " + last + "\n";
  const auto entry_pos = text.find(entry);
  ASSERT_NE(entry_pos, std::string::npos);
  text.erase(entry_pos, entry.size());
  const auto count_pos = text.find("families 2");
  ASSERT_NE(count_pos, std::string::npos);
  text.replace(count_pos, 10, "families 1");
  std::stringstream corrupted(text);
  try {
    MagicClassifier::load(corrupted);
    FAIL() << "expected rejection of family/class count mismatch";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("family table"), std::string::npos) << what;
    EXPECT_NE(what.find("1"), std::string::npos) << what;
    EXPECT_NE(what.find("2"), std::string::npos) << what;
  }
}

TEST(ModelIo, RejectsTruncatedFamilyTable) {
  MagicClassifier clf = fitted_classifier(wv_config(), 15);
  std::stringstream ss;
  clf.save(ss);
  std::string text = ss.str();
  // Claim a name longer than the remaining file.
  const std::string& first = clf.family_names().front();
  const std::string entry = std::to_string(first.size()) + " " + first;
  const auto pos = text.find(entry);
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, entry.size(), "999999 " + first);
  std::stringstream corrupted(text);
  EXPECT_THROW(MagicClassifier::load(corrupted), std::runtime_error);
}

}  // namespace
}  // namespace magic::core
