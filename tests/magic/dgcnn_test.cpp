#include "magic/dgcnn.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "magic/core_test_util.hpp"
#include "nn/loss.hpp"

namespace magic::core {
namespace {

using testing::make_graph;

DgcnnConfig base_config(PoolingType pooling, RemainingLayer remaining) {
  DgcnnConfig cfg;
  cfg.num_classes = 3;
  cfg.graph_conv_channels = {8, 8};
  cfg.pooling = pooling;
  cfg.remaining = remaining;
  cfg.pooling_ratio = 0.5;
  cfg.hidden_dim = 16;
  cfg.conv1d_channels_first = 4;
  cfg.conv1d_channels_second = 8;
  cfg.conv2d_channels = 4;
  cfg.dropout_rate = 0.0;
  return cfg;
}

std::vector<DgcnnConfig> all_variants() {
  return {base_config(PoolingType::SortPooling, RemainingLayer::Conv1D),
          base_config(PoolingType::SortPooling, RemainingLayer::WeightedVertices),
          base_config(PoolingType::AdaptivePooling, RemainingLayer::Conv1D)};
}

TEST(DgcnnConfig, DerivedQuantities) {
  DgcnnConfig cfg;
  cfg.graph_conv_channels = {128, 64, 32, 32};
  EXPECT_EQ(cfg.total_graph_channels(), 256u);
  cfg.pooling_ratio = 0.64;
  EXPECT_EQ(cfg.adaptive_grid(), 6u);
  cfg.pooling_ratio = 0.2;
  EXPECT_EQ(cfg.adaptive_grid(), 3u);
  cfg.pooling_ratio = 0.05;
  EXPECT_EQ(cfg.adaptive_grid(), 3u);  // floor at 3
  EXPECT_FALSE(cfg.describe().empty());
}

TEST(DgcnnModel, ForwardOutputsLogProbsForAllVariants) {
  util::Rng data_rng(1);
  for (auto& cfg : all_variants()) {
    util::Rng rng(2);
    DgcnnModel model(cfg, rng, /*sort_k_hint=*/6);
    model.set_training(false);
    for (std::size_t n : {1u, 4u, 9u, 30u}) {
      acfg::Acfg g = make_graph(0, n, n % 2 == 0, data_rng);
      nn::Tensor out = model.forward(g);
      ASSERT_EQ(out.rank(), 1u) << cfg.describe();
      ASSERT_EQ(out.dim(0), 3u) << cfg.describe();
      double total = 0.0;
      for (std::size_t c = 0; c < 3; ++c) {
        EXPECT_LE(out[c], 1e-9);
        total += std::exp(out[c]);
      }
      EXPECT_NEAR(total, 1.0, 1e-9) << cfg.describe() << " n=" << n;
    }
  }
}

TEST(DgcnnModel, BackwardRunsForAllVariantsAndGraphSizes) {
  util::Rng data_rng(3);
  for (auto& cfg : all_variants()) {
    util::Rng rng(4);
    DgcnnModel model(cfg, rng, 6);
    for (std::size_t n : {1u, 5u, 20u}) {
      acfg::Acfg g = make_graph(1, n, true, data_rng);
      nn::NllLoss loss;
      nn::Tensor lp = model.forward(g);
      loss.forward(lp, 1);
      EXPECT_NO_THROW(model.backward(loss.backward())) << cfg.describe();
    }
  }
}

TEST(DgcnnModel, GradientsNonZeroAfterBackward) {
  util::Rng data_rng(5);
  util::Rng rng(6);
  DgcnnConfig cfg = base_config(PoolingType::AdaptivePooling, RemainingLayer::Conv1D);
  DgcnnModel model(cfg, rng, 6);
  acfg::Acfg g = make_graph(0, 8, true, data_rng);
  nn::NllLoss loss;
  loss.forward(model.forward(g), 0);
  model.backward(loss.backward());
  double total_grad = 0.0;
  for (auto* p : model.parameters()) total_grad += tensor::norm(p->grad);
  EXPECT_GT(total_grad, 1e-8);
}

TEST(DgcnnModel, EndToEndGradientMatchesNumericOnFirstLayer) {
  // Full-model gradient check on the first graph-conv weight matrix (the
  // longest backprop path through pooling and the head).
  util::Rng data_rng(7);
  util::Rng rng(8);
  DgcnnConfig cfg = base_config(PoolingType::SortPooling, RemainingLayer::WeightedVertices);
  cfg.graph_conv_channels = {4, 3};
  cfg.hidden_dim = 5;
  cfg.graph_conv_activation = nn::Activation::Tanh;
  DgcnnModel model(cfg, rng, 4);
  model.set_training(false);
  // Eval mode disables grad caching; the numeric check needs an eval-mode
  // backward (no dropout), so opt back in like MagicClassifier::explain.
  model.set_grad_enabled(true);
  acfg::Acfg g = make_graph(0, 6, true, data_rng);

  auto loss_value = [&]() {
    nn::NllLoss loss;
    return loss.forward(model.forward(g), 2);
  };

  for (auto* p : model.parameters()) p->zero_grad();
  nn::NllLoss loss;
  loss.forward(model.forward(g), 2);
  model.backward(loss.backward());

  nn::Parameter* w0 = model.parameters().front();
  const double eps = 1e-6;
  for (std::size_t i = 0; i < std::min<std::size_t>(w0->value.size(), 8); ++i) {
    const double orig = w0->value[i];
    w0->value[i] = orig + eps;
    const double hi = loss_value();
    w0->value[i] = orig - eps;
    const double lo = loss_value();
    w0->value[i] = orig;
    const double numeric = (hi - lo) / (2 * eps);
    EXPECT_NEAR(w0->grad[i], numeric, 1e-4) << "at " << i;
  }
}

TEST(DgcnnModel, RejectsEmptyGraphAndChannelMismatch) {
  util::Rng rng(9);
  DgcnnModel model(base_config(PoolingType::SortPooling, RemainingLayer::Conv1D), rng, 4);
  acfg::Acfg empty;
  EXPECT_THROW(model.forward(empty), std::invalid_argument);
  acfg::Acfg bad;
  bad.out_edges = {{}};
  bad.attributes = tensor::Tensor({1, 5});
  EXPECT_THROW(model.forward(bad), std::invalid_argument);
}

TEST(DgcnnModel, RejectsSingleClassConfig) {
  util::Rng rng(10);
  DgcnnConfig cfg = base_config(PoolingType::SortPooling, RemainingLayer::Conv1D);
  cfg.num_classes = 1;
  EXPECT_THROW(DgcnnModel(cfg, rng, 4), std::invalid_argument);
}

TEST(DgcnnModel, SortKFloorsAtFour) {
  util::Rng rng(11);
  DgcnnConfig cfg = base_config(PoolingType::SortPooling, RemainingLayer::Conv1D);
  DgcnnModel model(cfg, rng, /*sort_k_hint=*/1);
  EXPECT_EQ(model.sort_k(), 4u);
}

TEST(DgcnnModel, ParameterCountPositiveAndStable) {
  util::Rng rng(12);
  DgcnnModel model(base_config(PoolingType::AdaptivePooling, RemainingLayer::Conv1D), rng, 4);
  const std::size_t count = model.parameter_count();
  EXPECT_GT(count, 100u);
  EXPECT_EQ(model.parameter_count(), count);
}

TEST(DgcnnModel, DeterministicInEvalMode) {
  util::Rng data_rng(13);
  util::Rng rng(14);
  DgcnnConfig cfg = base_config(PoolingType::AdaptivePooling, RemainingLayer::Conv1D);
  cfg.dropout_rate = 0.5;  // must be inert in eval mode
  DgcnnModel model(cfg, rng, 4);
  model.set_training(false);
  acfg::Acfg g = make_graph(0, 7, false, data_rng);
  nn::Tensor a = model.forward(g);
  nn::Tensor b = model.forward(g);
  EXPECT_TRUE(tensor::allclose(a, b, 0.0));
}

TEST(DgcnnModel, NormalizationAblationChangesOutput) {
  util::Rng data_rng(17);
  acfg::Acfg g = make_graph(0, 6, false, data_rng);  // star: degrees differ
  DgcnnConfig with = base_config(PoolingType::SortPooling, RemainingLayer::WeightedVertices);
  DgcnnConfig without = with;
  without.normalize_propagation = false;
  util::Rng r1(18), r2(18);
  DgcnnModel m1(with, r1, 4), m2(without, r2, 4);
  m1.set_training(false);
  m2.set_training(false);
  EXPECT_FALSE(tensor::allclose(m1.forward(g), m2.forward(g), 1e-9));
}

TEST(DgcnnModel, Log1pPreprocessingChangesOutput) {
  util::Rng data_rng(15);
  acfg::Acfg g = make_graph(0, 6, true, data_rng);
  DgcnnConfig with = base_config(PoolingType::SortPooling, RemainingLayer::WeightedVertices);
  DgcnnConfig without = with;
  without.log1p_attributes = false;
  util::Rng r1(16), r2(16);
  DgcnnModel m1(with, r1, 4), m2(without, r2, 4);
  m1.set_training(false);
  m2.set_training(false);
  EXPECT_FALSE(tensor::allclose(m1.forward(g), m2.forward(g), 1e-9));
}

}  // namespace
}  // namespace magic::core
