#include "magic/trainer.hpp"

#include <gtest/gtest.h>

#include "magic/core_test_util.hpp"

namespace magic::core {
namespace {

using testing::separable_dataset;

DgcnnConfig small_config() {
  DgcnnConfig cfg;
  cfg.num_classes = 2;
  cfg.graph_conv_channels = {8, 8};
  cfg.pooling = PoolingType::SortPooling;
  cfg.remaining = RemainingLayer::WeightedVertices;
  cfg.hidden_dim = 16;
  cfg.dropout_rate = 0.1;
  return cfg;
}

TrainOptions fast_train(std::size_t epochs) {
  TrainOptions opt;
  opt.epochs = epochs;
  opt.batch_size = 8;
  opt.learning_rate = 3e-3;
  opt.weight_decay = 1e-4;
  opt.seed = 5;
  return opt;
}

TEST(Trainer, LossDecreasesOnSeparableData) {
  data::Dataset d = separable_dataset(20, 1);
  std::vector<std::size_t> train_idx, val_idx;
  for (std::size_t i = 0; i < d.size(); ++i) {
    (i % 5 == 0 ? val_idx : train_idx).push_back(i);
  }
  util::Rng rng(2);
  DgcnnModel model(small_config(), rng, 6);
  TrainResult result = train_model(model, d, train_idx, val_idx, fast_train(12));
  ASSERT_EQ(result.history.size(), 12u);
  EXPECT_LT(result.history.back().train_loss, result.history.front().train_loss);
  EXPECT_LT(result.best_validation_loss, result.history.front().validation_loss + 1e-9);
}

TEST(Trainer, LearnsSeparableDataToHighAccuracy) {
  data::Dataset d = separable_dataset(20, 3);
  std::vector<std::size_t> train_idx, val_idx;
  for (std::size_t i = 0; i < d.size(); ++i) {
    (i % 4 == 0 ? val_idx : train_idx).push_back(i);
  }
  util::Rng rng(4);
  DgcnnModel model(small_config(), rng, 6);
  train_model(model, d, train_idx, val_idx, fast_train(25));
  EvalResult eval = evaluate_model(model, d, val_idx);
  EXPECT_GT(eval.confusion.accuracy(), 0.9);
}

TEST(Trainer, EmptyValidationUsesTrainLossForSchedule) {
  data::Dataset d = separable_dataset(8, 5);
  std::vector<std::size_t> all;
  for (std::size_t i = 0; i < d.size(); ++i) all.push_back(i);
  util::Rng rng(6);
  DgcnnModel model(small_config(), rng, 6);
  TrainResult result = train_model(model, d, all, {}, fast_train(3));
  for (const auto& e : result.history) {
    EXPECT_EQ(e.train_loss, e.validation_loss);
  }
}

TEST(Trainer, ThrowsOnEmptyTrainingSet) {
  data::Dataset d = separable_dataset(2, 7);
  util::Rng rng(8);
  DgcnnModel model(small_config(), rng, 6);
  EXPECT_THROW(train_model(model, d, {}, {}, fast_train(1)), std::invalid_argument);
}

TEST(Trainer, EvaluateProducesConsistentConfusion) {
  data::Dataset d = separable_dataset(5, 9);
  std::vector<std::size_t> idx;
  for (std::size_t i = 0; i < d.size(); ++i) idx.push_back(i);
  util::Rng rng(10);
  DgcnnModel model(small_config(), rng, 6);
  EvalResult eval = evaluate_model(model, d, idx);
  EXPECT_EQ(eval.confusion.total(), d.size());
  EXPECT_EQ(eval.probabilities.size(), d.size());
  EXPECT_EQ(eval.labels.size(), d.size());
  EXPECT_GE(eval.mean_log_loss, 0.0);
}

TEST(Trainer, RestoreBestSnapshotsBestEpochWeights) {
  data::Dataset d = separable_dataset(10, 21);
  std::vector<std::size_t> train_idx, val_idx;
  for (std::size_t i = 0; i < d.size(); ++i) {
    (i % 4 == 0 ? val_idx : train_idx).push_back(i);
  }
  TrainOptions opt = fast_train(15);
  opt.restore_best = true;
  util::Rng rng(22);
  DgcnnModel model(small_config(), rng, 6);
  TrainResult result = train_model(model, d, train_idx, val_idx, opt);
  // The evaluated loss after training equals the best epoch's loss (the
  // restored weights), not necessarily the final epoch's.
  EvalResult eval = evaluate_model(model, d, val_idx);
  EXPECT_NEAR(eval.mean_log_loss, result.best_validation_loss, 1e-9);
}

TEST(Trainer, BalancedSamplingLearnsImbalancedData) {
  // 36 of family 0 vs 4 of family 1: balanced oversampling must still give
  // the minority family enough gradient signal to be recalled.
  data::Dataset d;
  d.family_names = {"arith_chain", "mov_star"};
  util::Rng data_rng(31);
  for (int i = 0; i < 36; ++i) {
    d.samples.push_back(testing::make_graph(0, 6, true, data_rng));
  }
  for (int i = 0; i < 4; ++i) {
    d.samples.push_back(testing::make_graph(1, 6, false, data_rng));
  }
  std::vector<std::size_t> train_idx = {0, 1, 2, 3, 4, 5, 6, 7, 8, 9,
                                        10, 11, 12, 13, 14, 15, 16, 17,
                                        36, 37};
  std::vector<std::size_t> val_idx = {18, 19, 20, 38, 39};
  TrainOptions opt = fast_train(20);
  opt.balance_families = true;
  util::Rng rng(32);
  DgcnnModel model(small_config(), rng, 6);
  train_model(model, d, train_idx, val_idx, opt);
  EvalResult eval = evaluate_model(model, d, val_idx);
  // Minority family (labels 38/39 in validation) must be recalled.
  EXPECT_GT(eval.confusion.recall(1), 0.5);
}

TEST(Trainer, DeterministicGivenSeeds) {
  data::Dataset d = separable_dataset(6, 11);
  std::vector<std::size_t> idx;
  for (std::size_t i = 0; i < d.size(); ++i) idx.push_back(i);
  auto run = [&]() {
    util::Rng rng(12);
    DgcnnModel model(small_config(), rng, 6);
    train_model(model, d, idx, {}, fast_train(3));
    return evaluate_model(model, d, idx).mean_log_loss;
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace magic::core
