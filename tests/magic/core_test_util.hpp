#pragma once
// Fixtures for DGCNN/core tests: small synthetic ACFG datasets that are
// clearly separable, so training tests stay fast and deterministic.

#include <cstddef>

#include "acfg/attributes.hpp"
#include "data/dataset.hpp"
#include "util/rng.hpp"

namespace magic::core::testing {

/// One ACFG with `n` vertices: `chain` = path graph, otherwise a star from
/// vertex 0. The dominant attribute channel differs per label so even a
/// tiny model separates the classes.
inline acfg::Acfg make_graph(int label, std::size_t n, bool chain, util::Rng& rng) {
  acfg::Acfg a;
  a.label = label;
  a.out_edges.assign(n, {});
  if (chain) {
    for (std::size_t i = 0; i + 1 < n; ++i) a.out_edges[i].push_back(i + 1);
  } else {
    for (std::size_t i = 1; i < n; ++i) a.out_edges[0].push_back(i);
  }
  a.attributes = tensor::Tensor({n, static_cast<std::size_t>(acfg::kNumChannels)});
  for (std::size_t i = 0; i < n; ++i) {
    auto attr = [&](std::size_t c) -> double& {
      return a.attributes[i * acfg::kNumChannels + c];
    };
    attr(acfg::kTotalInsts) = 5.0 + rng.uniform(0, 2);
    attr(acfg::kVertexInsts) = attr(acfg::kTotalInsts);
    attr(acfg::kOffspring) = static_cast<double>(a.out_edges[i].size());
    if (label == 0) {
      attr(acfg::kArithmeticInsts) = 4.0 + rng.uniform(0, 1);
      attr(acfg::kMovInsts) = 0.5;
    } else {
      attr(acfg::kArithmeticInsts) = 0.5;
      attr(acfg::kMovInsts) = 4.0 + rng.uniform(0, 1);
    }
    attr(acfg::kNumericConstants) = rng.uniform(0, 3);
  }
  return a;
}

/// `per_class` chain-graphs of label 0 and star-graphs of label 1, with
/// vertex counts in [4, 10].
inline data::Dataset separable_dataset(std::size_t per_class, std::uint64_t seed) {
  data::Dataset d;
  d.family_names = {"arith_chain", "mov_star"};
  util::Rng rng(seed);
  for (std::size_t i = 0; i < per_class; ++i) {
    const auto n = static_cast<std::size_t>(rng.uniform_int(4, 10));
    d.samples.push_back(make_graph(0, n, true, rng));
    const auto m = static_cast<std::size_t>(rng.uniform_int(4, 10));
    d.samples.push_back(make_graph(1, m, false, rng));
  }
  return d;
}

}  // namespace magic::core::testing
