#include "magic/classifier.hpp"

#include <sstream>

#include <gtest/gtest.h>

#include "magic/core_test_util.hpp"

namespace magic::core {
namespace {

using testing::make_graph;
using testing::separable_dataset;

DgcnnConfig small_config() {
  DgcnnConfig cfg;
  cfg.graph_conv_channels = {8, 8};
  cfg.pooling = PoolingType::SortPooling;
  cfg.remaining = RemainingLayer::WeightedVertices;
  cfg.hidden_dim = 16;
  cfg.dropout_rate = 0.1;
  return cfg;
}

TrainOptions fast_train() {
  TrainOptions opt;
  opt.epochs = 20;
  opt.batch_size = 8;
  opt.learning_rate = 3e-3;
  return opt;
}

TEST(MagicClassifier, FitPredictOnSeparableData) {
  data::Dataset d = separable_dataset(15, 1);
  MagicClassifier clf(small_config(), fast_train(), 2);
  clf.fit(d, 0.2);
  EXPECT_TRUE(clf.fitted());
  util::Rng rng(3);
  Prediction p0 = clf.predict(make_graph(0, 6, true, rng));
  Prediction p1 = clf.predict(make_graph(1, 6, false, rng));
  EXPECT_EQ(p0.family_name, "arith_chain");
  EXPECT_EQ(p1.family_name, "mov_star");
  EXPECT_EQ(p0.probabilities.size(), 2u);
}

TEST(MagicClassifier, PredictBeforeFitThrows) {
  MagicClassifier clf(small_config());
  util::Rng rng(4);
  EXPECT_THROW(clf.predict(make_graph(0, 4, true, rng)), std::logic_error);
  std::ostringstream oss;
  EXPECT_THROW(clf.save(oss), std::logic_error);
}

TEST(MagicClassifier, PredictListingRunsFullPipeline) {
  data::Dataset d = separable_dataset(10, 5);
  MagicClassifier clf(small_config(), fast_train(), 6);
  clf.fit(d, 0.2);
  // Any parseable listing must classify into one of the two families.
  Prediction p = clf.predict_listing(
      "401000 mov eax, 1\n"
      "401005 add eax, 2\n"
      "401008 ret\n");
  EXPECT_LT(p.family_index, 2u);
}

TEST(MagicClassifier, SaveLoadRoundTripPreservesPredictions) {
  data::Dataset d = separable_dataset(12, 7);
  MagicClassifier clf(small_config(), fast_train(), 8);
  clf.fit(d, 0.2);

  std::stringstream ss;
  clf.save(ss);
  MagicClassifier restored = MagicClassifier::load(ss);
  EXPECT_TRUE(restored.fitted());
  EXPECT_EQ(restored.family_names(), clf.family_names());

  util::Rng rng(9);
  for (int i = 0; i < 5; ++i) {
    acfg::Acfg g = make_graph(i % 2, 5 + static_cast<std::size_t>(i), i % 2 == 0, rng);
    Prediction a = clf.predict(g);
    Prediction b = restored.predict(g);
    EXPECT_EQ(a.family_index, b.family_index);
    ASSERT_EQ(a.probabilities.size(), b.probabilities.size());
    for (std::size_t c = 0; c < a.probabilities.size(); ++c) {
      EXPECT_NEAR(a.probabilities[c], b.probabilities[c], 1e-12);
    }
  }
}

TEST(MagicClassifier, SaveLoadWorksForAdaptivePoolingVariant) {
  DgcnnConfig cfg = small_config();
  cfg.pooling = PoolingType::AdaptivePooling;
  cfg.conv2d_channels = 4;
  data::Dataset d = separable_dataset(8, 10);
  TrainOptions quick = fast_train();
  quick.epochs = 3;
  MagicClassifier clf(cfg, quick, 11);
  clf.fit(d, 0.2);
  std::stringstream ss;
  clf.save(ss);
  MagicClassifier restored = MagicClassifier::load(ss);
  util::Rng rng(12);
  acfg::Acfg g = make_graph(0, 7, true, rng);
  EXPECT_EQ(clf.predict(g).family_index, restored.predict(g).family_index);
}

TEST(MagicClassifier, LoadRejectsCorruptHeader) {
  std::stringstream ss("NOT-A-MODEL v9\n");
  EXPECT_THROW(MagicClassifier::load(ss), std::runtime_error);
}

TEST(MagicClassifier, LoadRejectsTruncatedParams) {
  data::Dataset d = separable_dataset(6, 13);
  TrainOptions quick = fast_train();
  quick.epochs = 2;
  MagicClassifier clf(small_config(), quick, 14);
  clf.fit(d, 0.2);
  std::stringstream ss;
  clf.save(ss);
  std::string text = ss.str();
  text.resize(text.size() * 3 / 4);
  std::stringstream truncated(text);
  EXPECT_THROW(MagicClassifier::load(truncated), std::runtime_error);
}

TEST(MagicClassifier, EvaluateReportsMetrics) {
  data::Dataset d = separable_dataset(10, 15);
  MagicClassifier clf(small_config(), fast_train(), 16);
  clf.fit(d, 0.2);
  std::vector<std::size_t> idx;
  for (std::size_t i = 0; i < d.size(); ++i) idx.push_back(i);
  EvalResult eval = clf.evaluate(d, idx);
  EXPECT_EQ(eval.confusion.total(), d.size());
  EXPECT_GT(eval.confusion.accuracy(), 0.8);
}

TEST(MagicClassifier, PredictBatchMatchesSerialPredictions) {
  data::Dataset d = separable_dataset(8, 19);
  MagicClassifier clf(small_config(), fast_train(), 20);
  clf.fit(d, 0.2);
  util::Rng rng(21);
  std::vector<acfg::Acfg> batch;
  for (int i = 0; i < 9; ++i) {
    batch.push_back(make_graph(i % 2, 4 + static_cast<std::size_t>(i % 5), i % 2 == 0, rng));
  }
  util::ThreadPool pool(3);
  const auto parallel = clf.predict_batch(batch, pool);
  ASSERT_EQ(parallel.size(), batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const Prediction serial = clf.predict(batch[i]);
    EXPECT_EQ(parallel[i].family_index, serial.family_index);
    for (std::size_t c = 0; c < serial.probabilities.size(); ++c) {
      EXPECT_NEAR(parallel[i].probabilities[c], serial.probabilities[c], 1e-9);
    }
  }
}

TEST(MagicClassifier, PredictBatchEmptyAndUnfitted) {
  MagicClassifier unfitted(small_config());
  util::ThreadPool pool(2);
  EXPECT_THROW(unfitted.predict_batch({}, pool), std::logic_error);
  data::Dataset d = separable_dataset(6, 22);
  TrainOptions quick = fast_train();
  quick.epochs = 2;
  MagicClassifier clf(small_config(), quick, 23);
  clf.fit(d, 0.2);
  EXPECT_TRUE(clf.predict_batch({}, pool).empty());
}

TEST(MagicClassifier, ExplainProducesNormalizedSaliency) {
  data::Dataset d = separable_dataset(10, 25);
  MagicClassifier clf(small_config(), fast_train(), 26);
  clf.fit(d, 0.2);
  util::Rng rng(27);
  acfg::Acfg g = make_graph(0, 7, true, rng);
  Explanation ex = clf.explain(g);
  EXPECT_EQ(ex.vertex_saliency.size(), g.num_vertices());
  EXPECT_EQ(ex.channel_saliency.size(), g.num_channels());
  double vsum = 0.0, csum = 0.0;
  for (double v : ex.vertex_saliency) {
    EXPECT_GE(v, 0.0);
    vsum += v;
  }
  for (double v : ex.channel_saliency) {
    EXPECT_GE(v, 0.0);
    csum += v;
  }
  EXPECT_NEAR(vsum, 1.0, 1e-9);
  EXPECT_NEAR(csum, 1.0, 1e-9);
  // The prediction embedded in the explanation matches predict().
  EXPECT_EQ(ex.prediction.family_index, clf.predict(g).family_index);
}

TEST(MagicClassifier, ExplainDoesNotPerturbTrainingGradients) {
  data::Dataset d = separable_dataset(8, 28);
  MagicClassifier clf(small_config(), fast_train(), 29);
  clf.fit(d, 0.2);
  util::Rng rng(30);
  acfg::Acfg g = make_graph(1, 6, false, rng);
  // Preload known gradient values, explain, verify untouched.
  auto params = clf.model()->parameters();
  for (auto* p : params) p->grad.fill(0.25);
  clf.explain(g);
  for (auto* p : params) {
    for (std::size_t i = 0; i < p->grad.size(); ++i) {
      ASSERT_EQ(p->grad[i], 0.25);
    }
  }
}

TEST(MagicClassifier, FileRoundTrip) {
  data::Dataset d = separable_dataset(6, 17);
  TrainOptions quick = fast_train();
  quick.epochs = 2;
  MagicClassifier clf(small_config(), quick, 18);
  clf.fit(d, 0.2);
  const std::string path = ::testing::TempDir() + "/magic_model.txt";
  clf.save_file(path);
  MagicClassifier restored = MagicClassifier::load_file(path);
  EXPECT_EQ(restored.family_names(), clf.family_names());
}

}  // namespace
}  // namespace magic::core
