#include "magic/hyperparam.hpp"

#include <set>

#include <gtest/gtest.h>

namespace magic::core {
namespace {

TEST(HyperparamGrid, FullGridHas208Points) {
  // §V-B: "we exhaustively search all 208 hyperparameter settings".
  const auto grid = full_table2_grid();
  EXPECT_EQ(grid.size(), 208u);
}

TEST(HyperparamGrid, StructuralFamilyCountsMatchPaper) {
  // 64 adaptive-pooling, 96 sort+Conv1D, 48 sort+WeightedVertices.
  const auto grid = full_table2_grid();
  std::size_t adaptive = 0, sort_conv = 0, sort_wv = 0;
  for (const auto& p : grid) {
    if (p.config.pooling == PoolingType::AdaptivePooling) {
      ++adaptive;
    } else if (p.config.remaining == RemainingLayer::Conv1D) {
      ++sort_conv;
    } else {
      ++sort_wv;
    }
  }
  EXPECT_EQ(adaptive, 64u);
  EXPECT_EQ(sort_conv, 96u);
  EXPECT_EQ(sort_wv, 48u);
}

TEST(HyperparamGrid, NarrowLastLayerOnlyForSortPooling) {
  // Table II footnote: graph conv size (32,32,32,1) applies only to sort
  // pooling.
  for (const auto& p : full_table2_grid()) {
    if (p.config.graph_conv_channels == std::vector<std::size_t>{32, 32, 32, 1}) {
      EXPECT_EQ(p.config.pooling, PoolingType::SortPooling);
    }
  }
}

TEST(HyperparamGrid, ValueRangesMatchTableTwo) {
  for (const auto& p : full_table2_grid()) {
    EXPECT_TRUE(p.config.pooling_ratio == 0.2 || p.config.pooling_ratio == 0.64);
    EXPECT_TRUE(p.config.dropout_rate == 0.1 || p.config.dropout_rate == 0.5);
    EXPECT_TRUE(p.batch_size == 10 || p.batch_size == 40);
    EXPECT_TRUE(p.weight_decay == 0.0001 || p.weight_decay == 0.0005);
    if (p.config.pooling == PoolingType::AdaptivePooling) {
      EXPECT_TRUE(p.config.conv2d_channels == 16 || p.config.conv2d_channels == 32);
    }
    if (p.config.pooling == PoolingType::SortPooling &&
        p.config.remaining == RemainingLayer::Conv1D) {
      EXPECT_TRUE(p.config.conv1d_kernel == 5 || p.config.conv1d_kernel == 7);
      EXPECT_EQ(p.config.conv1d_channels_first, 16u);
      EXPECT_EQ(p.config.conv1d_channels_second, 32u);
    }
  }
}

TEST(HyperparamGrid, AllPointsDistinct) {
  const auto grid = full_table2_grid();
  std::set<std::string> descriptions;
  for (const auto& p : grid) {
    EXPECT_TRUE(descriptions.insert(p.describe()).second)
        << "duplicate grid point: " << p.describe();
  }
}

TEST(HyperparamGrid, ReducedGridCoversAllVariants) {
  const auto grid = reduced_grid();
  EXPECT_GE(grid.size(), 4u);
  bool has_amp = false, has_conv1d = false, has_wv = false;
  for (const auto& p : grid) {
    if (p.config.pooling == PoolingType::AdaptivePooling) has_amp = true;
    else if (p.config.remaining == RemainingLayer::Conv1D) has_conv1d = true;
    else has_wv = true;
  }
  EXPECT_TRUE(has_amp);
  EXPECT_TRUE(has_conv1d);
  EXPECT_TRUE(has_wv);
}

TEST(HyperparamGrid, ReducedGridCoversOperatorZoo) {
  // The reduced grid carries an operator axis: all three graph-conv
  // operators appear, and the tag points are labelled in describe().
  const auto grid = reduced_grid();
  bool has_paper = false, has_sage = false, has_tag = false;
  for (const auto& p : grid) {
    switch (p.config.graph_conv_op) {
      case nn::GraphConvOperator::Paper: has_paper = true; break;
      case nn::GraphConvOperator::Sage: has_sage = true; break;
      case nn::GraphConvOperator::Tag:
        has_tag = true;
        EXPECT_NE(p.describe().find("op=tag"), std::string::npos)
            << p.describe();
        break;
    }
    if (p.config.graph_conv_op != nn::GraphConvOperator::Paper) {
      EXPECT_NE(p.describe().find("op="), std::string::npos) << p.describe();
    }
  }
  EXPECT_TRUE(has_paper);
  EXPECT_TRUE(has_sage);
  EXPECT_TRUE(has_tag);
}

TEST(HyperparamGrid, FullGridStaysOnPaperOperator) {
  // Table II is defined for the paper's Eq. 1 layer only — the 208-point
  // grid must not silently grow an operator axis.
  for (const auto& p : full_table2_grid()) {
    EXPECT_EQ(p.config.graph_conv_op, nn::GraphConvOperator::Paper);
  }
}

TEST(HyperparamGrid, ReducedGridIncludesPaperBestModels) {
  // Table II best models: MSKCFG = AMP/0.64/(128,64,32,32)/16/0.1/10/1e-4;
  // YANCFG = AMP/0.2/(32,32,32,32)/16/0.5/40/5e-4.
  const auto grid = reduced_grid();
  bool best_msk = false, best_yan = false;
  for (const auto& p : grid) {
    if (p.config.pooling == PoolingType::AdaptivePooling &&
        p.config.pooling_ratio == 0.64 &&
        p.config.graph_conv_channels == std::vector<std::size_t>{128, 64, 32, 32} &&
        p.config.dropout_rate == 0.1 && p.batch_size == 10 && p.weight_decay == 0.0001) {
      best_msk = true;
    }
    if (p.config.pooling == PoolingType::AdaptivePooling &&
        p.config.pooling_ratio == 0.2 &&
        p.config.graph_conv_channels == std::vector<std::size_t>{32, 32, 32, 32} &&
        p.config.dropout_rate == 0.5 && p.batch_size == 40 && p.weight_decay == 0.0005) {
      best_yan = true;
    }
  }
  EXPECT_TRUE(best_msk);
  EXPECT_TRUE(best_yan);
}

}  // namespace
}  // namespace magic::core
