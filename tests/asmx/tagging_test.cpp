#include "asmx/tagging.hpp"

#include <gtest/gtest.h>

#include "asmx/parser.hpp"

namespace magic::asmx {
namespace {

Program tagged(const std::string& listing) {
  ParseResult r = parse_listing(listing);
  TaggingPass pass;
  pass.run(r.program);
  return std::move(r.program);
}

TEST(Tagging, FirstInstructionIsStart) {
  Program p = tagged("401000 nop\n401001 nop\n");
  EXPECT_TRUE(p.instructions[0].start);
  EXPECT_FALSE(p.instructions[1].start);
}

TEST(Tagging, ConditionalJumpAlgorithmOne) {
  // Algorithm 1: cj.branchTo = dst; P[dst].start = true;
  // cj.fallThrough = true; P[cj.addr + cj.size].start = true.
  Program p = tagged(
      "401000 cmp eax, 0\n"
      "401003 jz 0x401008\n"
      "401005 add eax, 1\n"
      "401008 ret\n");
  const Instruction& jz = p.instructions[1];
  ASSERT_TRUE(jz.branch_to.has_value());
  EXPECT_EQ(*jz.branch_to, 0x401008u);
  EXPECT_TRUE(jz.fall_through);
  EXPECT_TRUE(p.instructions[2].start);  // fall-through successor
  EXPECT_TRUE(p.instructions[3].start);  // branch target
}

TEST(Tagging, UnconditionalJumpNoFallThrough) {
  Program p = tagged(
      "401000 jmp 0x401004\n"
      "401002 nop\n"
      "401004 ret\n");
  const Instruction& jmp = p.instructions[0];
  EXPECT_FALSE(jmp.fall_through);
  ASSERT_TRUE(jmp.branch_to.has_value());
  EXPECT_EQ(*jmp.branch_to, 0x401004u);
  EXPECT_TRUE(p.instructions[1].start);  // block boundary after jmp
  EXPECT_TRUE(p.instructions[2].start);
}

TEST(Tagging, CallBranchesAndFallsThrough) {
  Program p = tagged(
      "401000 call 0x401005\n"
      "401005 ret\n");
  const Instruction& call = p.instructions[0];
  ASSERT_TRUE(call.branch_to.has_value());
  EXPECT_EQ(*call.branch_to, 0x401005u);
  EXPECT_TRUE(call.fall_through);
}

TEST(Tagging, ExternalCallTargetUnresolved) {
  Program p0 = tagged("401000 call 0x77e80000\n");
  EXPECT_FALSE(p0.instructions[0].branch_to.has_value());
  TaggingPass pass;
  ParseResult r = parse_listing("401000 call 0x77e80000\n");
  pass.run(r.program);
  EXPECT_EQ(pass.unresolved_targets(), 1u);
}

TEST(Tagging, ReturnEndsBlock) {
  Program p = tagged(
      "401000 ret\n"
      "401001 nop\n");
  EXPECT_TRUE(p.instructions[0].is_return);
  EXPECT_FALSE(p.instructions[0].fall_through);
  EXPECT_TRUE(p.instructions[1].start);
}

TEST(Tagging, TerminationEndsBlock) {
  Program p = tagged(
      "401000 hlt\n"
      "401001 nop\n");
  EXPECT_FALSE(p.instructions[0].fall_through);
  EXPECT_TRUE(p.instructions[1].start);
}

TEST(Tagging, DefaultInstructionsFallThrough) {
  Program p = tagged("401000 mov eax, 1\n401005 add eax, 2\n");
  EXPECT_TRUE(p.instructions[0].fall_through);
  EXPECT_TRUE(p.instructions[1].fall_through);
}

TEST(Tagging, VisitorDispatchCoversAllClasses) {
  // A counting visitor observes every instruction exactly once.
  struct Counter : InstructionVisitor {
    int cj = 0, uj = 0, call = 0, ret = 0, term = 0, other = 0;
    void visit_conditional_jump(Program&, std::size_t) override { ++cj; }
    void visit_unconditional_jump(Program&, std::size_t) override { ++uj; }
    void visit_call(Program&, std::size_t) override { ++call; }
    void visit_return(Program&, std::size_t) override { ++ret; }
    void visit_termination(Program&, std::size_t) override { ++term; }
    void visit_default(Program&, std::size_t) override { ++other; }
  };
  ParseResult r = parse_listing(
      "401000 jz 0x401002\n"
      "401002 jmp 0x401004\n"
      "401004 call 0x401000\n"
      "401009 hlt\n"
      "40100a mov eax, 1\n"
      "40100f ret\n");
  Counter counter;
  apply_visitor(r.program, counter);
  EXPECT_EQ(counter.cj, 1);
  EXPECT_EQ(counter.uj, 1);
  EXPECT_EQ(counter.call, 1);
  EXPECT_EQ(counter.term, 1);
  EXPECT_EQ(counter.other, 1);
  EXPECT_EQ(counter.ret, 1);
}

TEST(Tagging, BackwardJumpMarksLoopHeader) {
  Program p = tagged(
      "401000 mov ecx, 10\n"
      "401005 dec ecx\n"
      "401007 jnz 0x401005\n"
      "401009 ret\n");
  EXPECT_TRUE(p.instructions[1].start);  // loop header
  EXPECT_EQ(*p.instructions[2].branch_to, 0x401005u);
}

TEST(Tagging, EmptyProgramIsFine) {
  Program p;
  TaggingPass pass;
  pass.run(p);
  EXPECT_TRUE(p.instructions.empty());
}

}  // namespace
}  // namespace magic::asmx
