// Robustness sweep: the parser must never crash on hostile or degenerate
// listings — real-world disassembly of packed malware is full of garbage
// (the paper notes "the correctness of the .asm file is not guaranteed").

#include <string>

#include <gtest/gtest.h>

#include "acfg/extractor.hpp"
#include "asmx/parser.hpp"
#include "util/rng.hpp"

namespace magic::asmx {
namespace {

TEST(ParserRobustness, EmptyAndWhitespaceOnly) {
  EXPECT_TRUE(parse_listing("").program.instructions.empty());
  EXPECT_TRUE(parse_listing("\n\n\n").program.instructions.empty());
  EXPECT_TRUE(parse_listing("   \t  \n ; only a comment\n").program.instructions.empty());
}

TEST(ParserRobustness, LabelWithoutCodeIsFine) {
  const auto r = parse_listing("orphan_label:\n");
  EXPECT_TRUE(r.program.instructions.empty());
}

TEST(ParserRobustness, GarbageOperandsDoNotThrow) {
  const auto r = parse_listing(
      "401000 mov eax, @@##$$\n"
      "401005 add [,,], ]]]\n"
      "40100a jmp ????\n");
  EXPECT_EQ(r.program.instructions.size(), 3u);
}

TEST(ParserRobustness, VeryLongLinesHandled) {
  std::string line = "401000 mov eax, ";
  line.append(10000, 'x');
  line += "\n401010 ret\n";
  const auto r = parse_listing(line);
  EXPECT_EQ(r.program.instructions.size(), 2u);
}

TEST(ParserRobustness, MissingNewlineAtEof) {
  const auto r = parse_listing("401000 ret");
  ASSERT_EQ(r.program.instructions.size(), 1u);
  EXPECT_EQ(r.program.instructions[0].mnemonic, "ret");
}

TEST(ParserRobustness, RandomPrintableGarbageNeverCrashes) {
  util::Rng rng(12345);
  const std::string charset =
      "abcdefghijklmnopqrstuvwxyz0123456789 ,.;:[]()+-_#@\t";
  for (int trial = 0; trial < 50; ++trial) {
    std::string text;
    const auto lines = rng.uniform_int(1, 20);
    for (std::int64_t l = 0; l < lines; ++l) {
      // Valid hex address so the line parses as code, then random garbage.
      text += std::to_string(400000 + l * 16) + " ";
      const auto len = rng.uniform_int(0, 60);
      for (std::int64_t c = 0; c < len; ++c) {
        text += charset[static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(charset.size()) - 1))];
      }
      text += "\n";
    }
    EXPECT_NO_THROW({
      auto result = parse_listing(text);
      (void)result;
    }) << "input:\n" << text;
  }
}

TEST(ParserRobustness, FullPipelineToleratesHostileListings) {
  // The complete parse -> tag -> CFG -> ACFG path on nasty-but-addressed
  // input must yield a structurally valid ACFG.
  const char* hostile =
      "401000 jmp 0x401000\n"          // self loop at entry
      "401002 jz 0x999999\n"           // target outside the image
      "401004 call eax\n"              // indirect call (no static target)
      "401006 db 0xcc\n"
      "401007 ret\n"
      "401008 jnz 0x401006\n";         // jump into data
  auto acfg = acfg::extract_acfg_from_listing(hostile);
  EXPECT_NO_THROW(acfg.validate());
  EXPECT_GE(acfg.num_vertices(), 3u);
}

TEST(ParserRobustness, DuplicateLabelsLastOneWins) {
  const auto r = parse_listing(
      "loc_a:\n"
      "401000 nop\n"
      "loc_a:\n"
      "401001 nop\n"
      "401002 jmp loc_a\n");
  const auto& jmp = r.program.instructions[2];
  ASSERT_TRUE(jmp.operands[0].kind == OperandKind::Target);
  EXPECT_EQ(jmp.operands[0].value, 0x401001u);
}

TEST(ParserRobustness, MixedCaseAndSpacing) {
  const auto r = parse_listing("  401000\tMOV\teax ,\t5 \n");
  ASSERT_EQ(r.program.instructions.size(), 1u);
  EXPECT_EQ(r.program.instructions[0].mnemonic, "mov");
  EXPECT_EQ(r.program.instructions[0].operands.size(), 2u);
  EXPECT_EQ(r.program.instructions[0].operands[1].value, 5u);
}

}  // namespace
}  // namespace magic::asmx
