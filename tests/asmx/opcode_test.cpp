#include "asmx/opcode_table.hpp"

#include <gtest/gtest.h>

namespace magic::asmx {
namespace {

TEST(OpcodeTable, ConditionalJumps) {
  for (const char* m : {"jz", "jnz", "je", "jne", "ja", "jbe", "js", "loop"}) {
    EXPECT_EQ(classify_mnemonic(m), OpcodeClass::ConditionalJump) << m;
  }
}

TEST(OpcodeTable, ControlFlowClasses) {
  EXPECT_EQ(classify_mnemonic("jmp"), OpcodeClass::UnconditionalJump);
  EXPECT_EQ(classify_mnemonic("call"), OpcodeClass::Call);
  EXPECT_EQ(classify_mnemonic("ret"), OpcodeClass::Return);
  EXPECT_EQ(classify_mnemonic("retn"), OpcodeClass::Return);
  EXPECT_EQ(classify_mnemonic("hlt"), OpcodeClass::Termination);
}

TEST(OpcodeTable, TableOneBuckets) {
  EXPECT_EQ(classify_mnemonic("add"), OpcodeClass::Arithmetic);
  EXPECT_EQ(classify_mnemonic("xor"), OpcodeClass::Arithmetic);
  EXPECT_EQ(classify_mnemonic("lea"), OpcodeClass::Arithmetic);
  EXPECT_EQ(classify_mnemonic("cmp"), OpcodeClass::Compare);
  EXPECT_EQ(classify_mnemonic("test"), OpcodeClass::Compare);
  EXPECT_EQ(classify_mnemonic("mov"), OpcodeClass::Mov);
  EXPECT_EQ(classify_mnemonic("push"), OpcodeClass::Mov);
  EXPECT_EQ(classify_mnemonic("db"), OpcodeClass::DataDecl);
  EXPECT_EQ(classify_mnemonic("align"), OpcodeClass::DataDecl);
}

TEST(OpcodeTable, UnknownMnemonicIsOther) {
  EXPECT_EQ(classify_mnemonic("frobnicate"), OpcodeClass::Other);
  EXPECT_EQ(classify_mnemonic(""), OpcodeClass::Other);
}

TEST(OpcodeTable, FallThroughSemantics) {
  // Conditional jumps and calls continue; jmp/ret/hlt do not.
  EXPECT_TRUE(falls_through(OpcodeClass::ConditionalJump));
  EXPECT_TRUE(falls_through(OpcodeClass::Call));
  EXPECT_TRUE(falls_through(OpcodeClass::Mov));
  EXPECT_FALSE(falls_through(OpcodeClass::UnconditionalJump));
  EXPECT_FALSE(falls_through(OpcodeClass::Return));
  EXPECT_FALSE(falls_through(OpcodeClass::Termination));
}

TEST(OpcodeTable, ControlTransferPredicate) {
  EXPECT_TRUE(is_control_transfer(OpcodeClass::ConditionalJump));
  EXPECT_TRUE(is_control_transfer(OpcodeClass::Call));
  EXPECT_TRUE(is_control_transfer(OpcodeClass::Return));
  EXPECT_FALSE(is_control_transfer(OpcodeClass::Arithmetic));
  EXPECT_FALSE(is_control_transfer(OpcodeClass::Other));
}

TEST(OpcodeTable, AttributeBucketMembership) {
  // Transfer bucket counts jumps but not calls or returns (Table I keeps
  // calls and terminations in their own rows).
  EXPECT_TRUE(counts_as_transfer(OpcodeClass::ConditionalJump));
  EXPECT_TRUE(counts_as_transfer(OpcodeClass::UnconditionalJump));
  EXPECT_FALSE(counts_as_transfer(OpcodeClass::Call));
  EXPECT_TRUE(counts_as_call(OpcodeClass::Call));
  EXPECT_TRUE(counts_as_termination(OpcodeClass::Return));
  EXPECT_TRUE(counts_as_termination(OpcodeClass::Termination));
  EXPECT_FALSE(counts_as_termination(OpcodeClass::UnconditionalJump));
  EXPECT_TRUE(counts_as_data_decl(OpcodeClass::DataDecl));
}

}  // namespace
}  // namespace magic::asmx
