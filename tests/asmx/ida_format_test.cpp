// Parsing of IDA Pro-style .asm exports: segment-prefixed addresses,
// same-line labels, and assembler keywords in operands. The MSKCFG dataset
// ships exactly this format (§V-A: .asm files "generated with the IDA Pro
// tool").

#include <gtest/gtest.h>

#include "acfg/extractor.hpp"
#include "asmx/parser.hpp"
#include "cfg/cfg_builder.hpp"

namespace magic::asmx {
namespace {

constexpr const char* kIdaListing =
    "; =============== S U B R O U T I N E ===============\n"
    ".text:00401000 sub_401000:\n"
    ".text:00401000 push ebp\n"
    ".text:00401001 mov ebp, esp\n"
    ".text:00401003 mov eax, dword ptr [ebp+8]\n"
    ".text:00401006 cmp eax, 0\n"
    ".text:00401009 jz short loc_401010\n"
    ".text:0040100b add eax, 1\n"
    ".text:0040100e jmp short loc_401012\n"
    ".text:00401010 loc_401010:\n"
    ".text:00401010 xor eax, eax\n"
    ".text:00401012 loc_401012:\n"
    ".text:00401012 pop ebp\n"
    ".text:00401013 retn\n";

TEST(IdaFormat, SegmentPrefixedAddressesParse) {
  const auto r = parse_listing(kIdaListing);
  ASSERT_EQ(r.program.instructions.size(), 10u);
  EXPECT_EQ(r.program.instructions[0].addr, 0x401000u);
  EXPECT_EQ(r.program.instructions.back().addr, 0x401013u);
  EXPECT_TRUE(r.diagnostics.empty());
}

TEST(IdaFormat, SameLineLabelsResolve) {
  const auto r = parse_listing(kIdaListing);
  // jz short loc_401010 must resolve to 0x401010.
  const auto& jz = r.program.instructions[4];
  EXPECT_EQ(jz.mnemonic, "jz");
  ASSERT_EQ(jz.operands.size(), 1u);
  EXPECT_EQ(jz.operands[0].kind, OperandKind::Target);
  EXPECT_EQ(jz.operands[0].value, 0x401010u);
}

TEST(IdaFormat, ShortKeywordStripped) {
  const auto r = parse_listing(".text:00401000 jmp short 0x401005\n");
  const auto& jmp = r.program.instructions[0];
  ASSERT_EQ(jmp.operands.size(), 1u);
  EXPECT_EQ(jmp.operands[0].kind, OperandKind::Target);
  EXPECT_EQ(jmp.operands[0].value, 0x401005u);
}

TEST(IdaFormat, DwordPtrOperandIsMemory) {
  const auto r = parse_listing(".text:00401000 mov eax, dword ptr [ebp+8]\n");
  EXPECT_EQ(r.program.instructions[0].operands[1].kind, OperandKind::Memory);
}

TEST(IdaFormat, OffsetKeywordStripped) {
  const auto r = parse_listing(".text:00401000 push offset 0x403000\n");
  // push is not a control transfer, so a numeric stays Immediate.
  EXPECT_EQ(r.program.instructions[0].operands[0].kind, OperandKind::Immediate);
}

TEST(IdaFormat, LabelOnlyLinesProduceNoInstruction) {
  const auto r = parse_listing(
      ".text:00401000 loc_401000:\n"
      ".text:00401000 nop\n");
  EXPECT_EQ(r.program.instructions.size(), 1u);
  EXPECT_EQ(r.program.instructions[0].mnemonic, "nop");
}

TEST(IdaFormat, FullPipelineBuildsExpectedCfg) {
  cfg::ControlFlowGraph g = cfg::CfgBuilder::build_from_listing(kIdaListing);
  // Diamond: entry -> {then, else} -> join.
  EXPECT_EQ(g.num_blocks(), 4u);
  const auto entry = g.block_at(0x401000);
  ASSERT_NE(entry, cfg::kInvalidBlock);
  EXPECT_EQ(g.block(entry).successors.size(), 2u);
  acfg::Acfg a = acfg::extract_acfg(g);
  EXPECT_EQ(a.num_vertices(), 4u);
}

TEST(IdaFormat, MixedPlainAndSegmentedLines) {
  const auto r = parse_listing(
      "401000 nop\n"
      ".text:00401001 ret\n");
  ASSERT_EQ(r.program.instructions.size(), 2u);
  EXPECT_EQ(r.program.instructions[1].addr, 0x401001u);
}

}  // namespace
}  // namespace magic::asmx
