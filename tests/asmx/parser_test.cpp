#include "asmx/parser.hpp"

#include <gtest/gtest.h>

namespace magic::asmx {
namespace {

TEST(ParseNumber, DecimalHexForms) {
  std::uint64_t v = 0;
  EXPECT_TRUE(parse_number("42", v));
  EXPECT_EQ(v, 42u);
  EXPECT_TRUE(parse_number("0x1A", v));
  EXPECT_EQ(v, 0x1Au);
  EXPECT_TRUE(parse_number("401000h", v));
  EXPECT_EQ(v, 0x401000u);
  EXPECT_TRUE(parse_number("  7 ", v));
  EXPECT_EQ(v, 7u);
}

TEST(ParseNumber, RejectsGarbage) {
  std::uint64_t v = 0;
  EXPECT_FALSE(parse_number("eax", v));
  EXPECT_FALSE(parse_number("", v));
  EXPECT_FALSE(parse_number("0x", v));
  EXPECT_FALSE(parse_number("12g4", v));
}

TEST(ParseOperand, ClassifiesKinds) {
  EXPECT_EQ(parse_operand("eax").kind, OperandKind::Register);
  EXPECT_EQ(parse_operand("R11").kind, OperandKind::Register);
  EXPECT_EQ(parse_operand("42").kind, OperandKind::Immediate);
  EXPECT_EQ(parse_operand("0x10").kind, OperandKind::Immediate);
  EXPECT_EQ(parse_operand("[ebp+8]").kind, OperandKind::Memory);
  EXPECT_EQ(parse_operand("loc_401020").kind, OperandKind::Target);
  EXPECT_EQ(parse_operand("sub_401100").kind, OperandKind::Target);
  EXPECT_EQ(parse_operand("some_symbol").kind, OperandKind::Other);
}

TEST(ParseListing, BasicProgram) {
  const auto result = parse_listing(
      "; a tiny program\n"
      "401000 push ebp\n"
      "401001 mov ebp, esp\n"
      "401003 ret\n");
  ASSERT_EQ(result.program.instructions.size(), 3u);
  EXPECT_EQ(result.program.instructions[0].addr, 0x401000u);
  EXPECT_EQ(result.program.instructions[0].mnemonic, "push");
  EXPECT_EQ(result.program.instructions[1].operands.size(), 2u);
  EXPECT_EQ(result.program.instructions[2].opclass, OpcodeClass::Return);
  EXPECT_TRUE(result.diagnostics.empty());
}

TEST(ParseListing, SizesInferredFromAddressGaps) {
  const auto result = parse_listing(
      "401000 push ebp\n"
      "401001 mov ebp, esp\n"
      "401003 ret\n");
  EXPECT_EQ(result.program.instructions[0].size, 1u);
  EXPECT_EQ(result.program.instructions[1].size, 2u);
  EXPECT_EQ(result.program.instructions[2].size, 1u);  // last defaults to 1
}

TEST(ParseListing, LargeGapTreatedAsSectionBreak) {
  const auto result = parse_listing(
      "401000 ret\n"
      "402000 ret\n");
  EXPECT_EQ(result.program.instructions[0].size, 1u);
}

TEST(ParseListing, LabelsResolveToAddresses) {
  const auto result = parse_listing(
      "loc_start:\n"
      "401000 cmp eax, 1\n"
      "401003 jz loc_start\n");
  const auto& jz = result.program.instructions[1];
  ASSERT_EQ(jz.operands.size(), 1u);
  EXPECT_EQ(jz.operands[0].kind, OperandKind::Target);
  EXPECT_EQ(jz.operands[0].value, 0x401000u);
}

TEST(ParseListing, NumericJumpTargetsPromotedToTarget) {
  const auto result = parse_listing("401000 jmp 0x401010\n");
  const auto& jmp = result.program.instructions[0];
  EXPECT_EQ(jmp.operands[0].kind, OperandKind::Target);
  EXPECT_EQ(jmp.operands[0].value, 0x401010u);
}

TEST(ParseListing, ImmediatesStayImmediateOnNonTransfer) {
  const auto result = parse_listing("401000 mov eax, 0x10\n");
  EXPECT_EQ(result.program.instructions[0].operands[1].kind, OperandKind::Immediate);
}

TEST(ParseListing, UnresolvedLabelBecomesDiagnostic) {
  const auto result = parse_listing("401000 jmp loc_nowhere\n");
  EXPECT_FALSE(result.diagnostics.empty());
  EXPECT_EQ(result.program.instructions[0].operands[0].kind, OperandKind::Other);
}

TEST(ParseListing, CommentsAndBlankLinesIgnored)  {
  const auto result = parse_listing(
      "\n; header comment\n\n"
      "401000 nop ; trailing comment\n"
      "\n");
  ASSERT_EQ(result.program.instructions.size(), 1u);
  EXPECT_EQ(result.program.instructions[0].mnemonic, "nop");
}

TEST(ParseListing, OutOfOrderAddressesAreSorted) {
  const auto result = parse_listing(
      "401010 ret\n"
      "401000 nop\n");
  EXPECT_EQ(result.program.instructions[0].addr, 0x401000u);
  EXPECT_EQ(result.program.instructions[1].addr, 0x401010u);
}

TEST(ParseListing, DuplicateAddressKeptOnceWithDiagnostic) {
  const auto result = parse_listing(
      "401000 nop\n"
      "401000 ret\n");
  EXPECT_EQ(result.program.instructions.size(), 1u);
  EXPECT_FALSE(result.diagnostics.empty());
}

TEST(ParseListing, MalformedAddressThrows) {
  EXPECT_THROW(parse_listing("zzz nop\n"), std::runtime_error);
}

TEST(ParseListing, MnemonicLowercased) {
  const auto result = parse_listing("401000 MOV EAX, EBX\n");
  EXPECT_EQ(result.program.instructions[0].mnemonic, "mov");
  EXPECT_EQ(result.program.instructions[0].opclass, OpcodeClass::Mov);
}

TEST(Program, IndexOfBinarySearch) {
  const auto result = parse_listing(
      "401000 nop\n"
      "401001 nop\n"
      "401002 ret\n");
  EXPECT_EQ(result.program.index_of(0x401001), 1u);
  EXPECT_EQ(result.program.index_of(0x401005), Program::npos);
}

TEST(Instruction, NumericConstantCount) {
  const auto result = parse_listing("401000 add eax, 5\n401003 mov ebx, ecx\n");
  EXPECT_EQ(result.program.instructions[0].numeric_constant_count(), 1u);
  EXPECT_EQ(result.program.instructions[1].numeric_constant_count(), 0u);
}

}  // namespace
}  // namespace magic::asmx
