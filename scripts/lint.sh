#!/usr/bin/env bash
# scripts/lint.sh — clang-tidy gate over src/ (config: .clang-tidy).
#
# Usage:
#   scripts/lint.sh             # lint every .cpp under src/
#   scripts/lint.sh src/nn      # lint a subtree
#
# Environment knobs:
#   JOBS=N           parallel tidy processes (default: nproc)
#   CLANG_TIDY=...   clang-tidy binary (default: first of clang-tidy,
#                    clang-tidy-{20..14} on PATH)
#
# All warnings are promoted to errors (-warnings-as-errors='*'); the gate
# passes only at zero findings. If no clang-tidy binary is installed the
# script reports SKIPPED and exits 0 so environments without LLVM tooling
# (the lint job in CI installs it) are not blocked.

set -euo pipefail

ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
JOBS="${JOBS:-$(nproc)}"
TARGET="${1:-${ROOT}/src}"

find_clang_tidy() {
  if [[ -n "${CLANG_TIDY:-}" ]]; then
    echo "${CLANG_TIDY}"
    return 0
  fi
  local cand
  for cand in clang-tidy clang-tidy-20 clang-tidy-19 clang-tidy-18 \
              clang-tidy-17 clang-tidy-16 clang-tidy-15 clang-tidy-14; do
    if command -v "${cand}" > /dev/null 2>&1; then
      echo "${cand}"
      return 0
    fi
  done
  return 1
}

if ! TIDY="$(find_clang_tidy)"; then
  echo "lint.sh: SKIPPED — no clang-tidy binary on PATH (install LLVM tooling to run the gate)"
  exit 0
fi

BUILD_DIR="${ROOT}/build-tidy"
echo "==> configure compile database (${BUILD_DIR})"
cmake -B "${BUILD_DIR}" -S "${ROOT}" \
  -DCMAKE_BUILD_TYPE=Debug \
  -DCMAKE_EXPORT_COMPILE_COMMANDS=ON \
  -DMAGIC_CHECKED_BUILD=ON \
  -DMAGIC_NATIVE_ARCH=OFF \
  -DMAGIC_BUILD_TESTS=OFF \
  -DMAGIC_BUILD_BENCHES=OFF \
  -DMAGIC_BUILD_EXAMPLES=OFF > /dev/null

mapfile -t FILES < <(find "${TARGET}" -name '*.cpp' | sort)
if [[ ${#FILES[@]} -eq 0 ]]; then
  echo "lint.sh: no .cpp files under ${TARGET}" >&2
  exit 2
fi

echo "==> ${TIDY} over ${#FILES[@]} files (-j${JOBS})"
printf '%s\n' "${FILES[@]}" | xargs -P "${JOBS}" -n 1 \
  "${TIDY}" -p "${BUILD_DIR}" --quiet -warnings-as-errors='*'

echo "lint.sh: zero clang-tidy findings."
