#!/usr/bin/env bash
# scripts/lint.sh — the static gates: magic_lint + clang-tidy over src/.
#
# Usage:
#   scripts/lint.sh             # lint every .cpp under src/
#   scripts/lint.sh src/nn      # lint a subtree (clang-tidy only; magic_lint
#                               # is whole-tree by design)
#
# Environment knobs:
#   JOBS=N           parallel tidy processes (default: nproc)
#   CLANG_TIDY=...   clang-tidy binary (default: first of clang-tidy,
#                    clang-tidy-{20..14} on PATH)
#   BUILD_DIR=...    existing build tree with compile_commands.json to reuse
#                    (default: configure a fresh ${ROOT}/build-tidy; CI
#                    passes its build tree so the database is configured
#                    exactly once)
#   LINT_REPORT=...  also write the magic_lint findings to this file
#
# Gate 1 — scripts/magic_lint.py: project invariants (shape contracts open
# every forward body, util::Mutex-only locking with MAGIC_GUARDED_BY, no
# std::endl, no naked std::thread, self-contained headers). Needs only
# python3 + a C++ compiler, so it always runs.
#
# Gate 2 — clang-tidy (config: .clang-tidy). All warnings are promoted to
# errors; the gate passes only at zero findings. If no clang-tidy binary is
# installed this half reports SKIPPED and exits 0 so environments without
# LLVM tooling (the lint job in CI installs it) are not blocked.

set -euo pipefail

ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
JOBS="${JOBS:-$(nproc)}"
TARGET="${1:-${ROOT}/src}"

echo "==> magic_lint (project invariants)"
MAGIC_LINT_ARGS=(--root "${ROOT}" --cxx "${CXX:-c++}")
if [[ -n "${LINT_REPORT:-}" ]]; then
  MAGIC_LINT_ARGS+=(--report "${LINT_REPORT}")
fi
python3 "${ROOT}/scripts/magic_lint.py" "${MAGIC_LINT_ARGS[@]}"

find_clang_tidy() {
  if [[ -n "${CLANG_TIDY:-}" ]]; then
    echo "${CLANG_TIDY}"
    return 0
  fi
  local cand
  for cand in clang-tidy clang-tidy-20 clang-tidy-19 clang-tidy-18 \
              clang-tidy-17 clang-tidy-16 clang-tidy-15 clang-tidy-14; do
    if command -v "${cand}" > /dev/null 2>&1; then
      echo "${cand}"
      return 0
    fi
  done
  return 1
}

if ! TIDY="$(find_clang_tidy)"; then
  echo "lint.sh: clang-tidy SKIPPED — no binary on PATH (install LLVM tooling to run the gate)"
  exit 0
fi

if [[ -n "${BUILD_DIR:-}" && -f "${BUILD_DIR}/compile_commands.json" ]]; then
  echo "==> reusing compile database (${BUILD_DIR})"
else
  BUILD_DIR="${ROOT}/build-tidy"
  echo "==> configure compile database (${BUILD_DIR})"
  cmake -B "${BUILD_DIR}" -S "${ROOT}" \
    -DCMAKE_BUILD_TYPE=Debug \
    -DCMAKE_EXPORT_COMPILE_COMMANDS=ON \
    -DMAGIC_CHECKED_BUILD=ON \
    -DMAGIC_NATIVE_ARCH=OFF \
    -DMAGIC_BUILD_TESTS=OFF \
    -DMAGIC_BUILD_BENCHES=OFF \
    -DMAGIC_BUILD_EXAMPLES=OFF > /dev/null
fi

mapfile -t FILES < <(find "${TARGET}" -name '*.cpp' | sort)
if [[ ${#FILES[@]} -eq 0 ]]; then
  echo "lint.sh: no .cpp files under ${TARGET}" >&2
  exit 2
fi

echo "==> ${TIDY} over ${#FILES[@]} files (-j${JOBS})"
printf '%s\n' "${FILES[@]}" | xargs -P "${JOBS}" -n 1 \
  "${TIDY}" -p "${BUILD_DIR}" --quiet -warnings-as-errors='*'

echo "lint.sh: zero clang-tidy findings."
