#!/usr/bin/env bash
# scripts/check.sh — build and run the full ctest suite under sanitizers.
#
# Configurations:
#   asan  : AddressSanitizer + UndefinedBehaviorSanitizer (build-asan/)
#   tsan  : ThreadSanitizer                                (build-tsan/)
#
# Usage:
#   scripts/check.sh            # both configurations, full suite
#   scripts/check.sh asan       # ASan+UBSan only
#   scripts/check.sh tsan       # TSan only
#
# Environment knobs:
#   JOBS=N            parallel build/test jobs (default: nproc)
#   CTEST_ARGS="..."  extra ctest arguments (e.g. -R ThreadPool)
#   BUILD_TYPE=...    CMake build type for instrumented trees (default
#                     RelWithDebInfo: optimized enough to finish, debug
#                     info for usable sanitizer stacks)
#
# Any sanitizer finding fails the run: UBSan is built with
# -fno-sanitize-recover=all, ASan/TSan abort the offending test, and the
# suppression files under .sanitizers/ are kept free of first-party entries.
#
# Both configurations run the FULL ctest suite; in particular the tsan
# configuration exercises the data-parallel trainer tests
# (ParallelTrainer.* in test_core), which fan per-sample forward/backward
# across the thread pool and are the main concurrency surface besides
# magic::serve, the epoll daemon and model-registry suites (Reactor.* and
# ModelRegistry.* in test_serve: worker pool + completion hooks waking the
# event loop, hot-swap under load, shadow-pair scoring from verdict hooks),
# and the magic::obs registry tests (Metrics.Concurrent* in test_obs),
# which hammer one counter/histogram from many threads while
# snapshot_json() runs.

set -euo pipefail

ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
JOBS="${JOBS:-$(nproc)}"
BUILD_TYPE="${BUILD_TYPE:-RelWithDebInfo}"
CTEST_ARGS="${CTEST_ARGS:-}"

export ASAN_OPTIONS="strict_string_checks=1:detect_stack_use_after_return=1:check_initialization_order=1:detect_leaks=1"
export LSAN_OPTIONS="suppressions=${ROOT}/.sanitizers/lsan.supp"
export UBSAN_OPTIONS="print_stacktrace=1:halt_on_error=1:suppressions=${ROOT}/.sanitizers/ubsan.supp"
export TSAN_OPTIONS="halt_on_error=1:second_deadlock_stack=1:suppressions=${ROOT}/.sanitizers/tsan.supp"

run_config() {
  local name="$1" sanitize="$2"
  local build_dir="${ROOT}/build-${name}"
  echo "==> [${name}] configure (MAGIC_SANITIZE=${sanitize})"
  cmake -B "${build_dir}" -S "${ROOT}" \
    -DCMAKE_BUILD_TYPE="${BUILD_TYPE}" \
    -DMAGIC_SANITIZE="${sanitize}" \
    -DMAGIC_CHECKED_BUILD=ON \
    -DMAGIC_NATIVE_ARCH=OFF \
    -DMAGIC_BUILD_BENCHES=OFF \
    -DMAGIC_BUILD_EXAMPLES=OFF
  echo "==> [${name}] build (-j${JOBS})"
  cmake --build "${build_dir}" -j "${JOBS}"
  echo "==> [${name}] ctest"
  # shellcheck disable=SC2086  # CTEST_ARGS is intentionally word-split
  ctest --test-dir "${build_dir}" --output-on-failure -j "${JOBS}" ${CTEST_ARGS}
  echo "==> [${name}] OK"
}

want="${1:-all}"
case "${want}" in
  asan) run_config asan "address,undefined" ;;
  tsan) run_config tsan "thread" ;;
  all)
    run_config asan "address,undefined"
    run_config tsan "thread"
    ;;
  *)
    echo "usage: scripts/check.sh [asan|tsan|all]" >&2
    exit 2
    ;;
esac

echo "All sanitizer configurations passed."
