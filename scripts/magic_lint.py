#!/usr/bin/env python3
"""magic_lint: project-invariant linter for the MAGIC source tree.

Enforces repo-wide invariants that clang-tidy and -Wthread-safety cannot
express (they are project conventions, not C++ rules):

  forward-contract   Every concrete nn::Module::forward body opens with a
                     shape contract (MAGIC_SHAPE_CONTRACT* or
                     check_shape_contract) within the first few lines.
  conv-op-contract   The graph-convolution operator zoo (src/nn/graph_conv*)
                     keeps the shape-contract-at-forward invariant on EVERY
                     operator entry point, including the void-returning
                     fused path forward_inference_into that forward-contract
                     (which matches only `Tensor X::forward`) cannot see.
  mutex-annotation   No raw std::mutex member anywhere in src/ (util::Mutex
                     is the only allowed mutex type; it carries the
                     -Wthread-safety capability). Every util::Mutex
                     declaration must be named by at least one
                     MAGIC_GUARDED_BY(<name>) in the same file, or carry an
                     explicit `magic-lint: guards(<what>)` comment for the
                     rare mutex that guards something other than fields
                     (e.g. the stderr stream).
  guard-names        Every MAGIC_GUARDED_BY(<name>) whose argument is a plain
                     identifier must name a util::Mutex declared in the same
                     file — a typo'd guard name silently disables the
                     analysis for that member (guarded_by of an undeclared
                     symbol is an error only under Clang, and only when the
                     member is actually touched). Arguments that reach
                     through an object (`->`, `.`, `::`) are out of scope.
  no-endl            No std::endl in src/ (use '\\n'; flushing is explicit).
  no-naked-thread    No raw std::thread construction outside
                     util/join_thread.hpp: threads live in util::ThreadPool
                     or util::JoinThread so every thread is joined by
                     construction. (std::thread::hardware_concurrency and
                     std::this_thread remain allowed.)
  header-standalone  Every header under src/ compiles on its own
                     (-fsyntax-only), i.e. includes what it uses.
  simd-intrinsics    Raw vector intrinsics (_mm256_*/_mm_*, __m256/__m128
                     types, <immintrin.h>) appear only under
                     src/tensor/simd/ — everything else dispatches through
                     simd::KernelTable so the scalar build stays the
                     portable reference and ISA-specific code cannot leak
                     into shared translation units.

Exit status: 0 = clean, 1 = findings, 2 = usage/environment error.

Usage:
  scripts/magic_lint.py [--root DIR] [--skip-headers] [--report FILE]
                        [--cxx COMPILER] [--rules r1,r2,...]
"""

from __future__ import annotations

import argparse
import re
import subprocess
import sys
from pathlib import Path

ALL_RULES = (
    "forward-contract",
    "conv-op-contract",
    "mutex-annotation",
    "guard-names",
    "no-endl",
    "no-naked-thread",
    "header-standalone",
    "simd-intrinsics",
)

# How many *effective* lines (code only — comments, blanks and preprocessor
# directives don't count) after the `forward(` signature may pass before the
# shape contract appears. Generous enough for a wrapped signature plus a
# guard clause or two (DgcnnModel's checked-build concurrency guard,
# nn::Linear's rank dispatch), tight enough that the contract stays part of
# the opening of the body.
CONTRACT_WINDOW_LINES = 10

CONTRACT_TOKENS = ("MAGIC_SHAPE_CONTRACT", "check_shape_contract")

# The one place raw std::thread construction is legal: the RAII wrapper.
NAKED_THREAD_ALLOWED = {"util/join_thread.hpp"}

# The one place a std::mutex member is legal: the capability wrapper itself.
STD_MUTEX_ALLOWED = {"util/mutex.hpp"}

# The one subtree where raw vector intrinsics are legal: the kernel TUs
# behind the runtime-dispatched simd::KernelTable.
SIMD_ALLOWED_PREFIX = "tensor/simd/"


class Finding:
    def __init__(self, rule: str, path: Path, line: int, message: str):
        self.rule = rule
        self.path = path
        self.line = line
        self.message = message

    def render(self, root: Path) -> str:
        rel = self.path.relative_to(root) if self.path.is_absolute() else self.path
        return f"{rel}:{self.line}: [{self.rule}] {self.message}"


def iter_sources(src: Path, suffixes: tuple[str, ...]):
    for path in sorted(src.rglob("*")):
        if path.is_file() and path.suffix in suffixes:
            yield path


def strip_line_comment(line: str) -> str:
    """Removes // comments (good enough: no multiline-comment code in src/)."""
    idx = line.find("//")
    return line if idx < 0 else line[:idx]


def effective_window(lines: list[str], start: int, count: int) -> str:
    """The next `count` effective lines from `start`: code only, skipping
    blank lines, //-comment-only lines and preprocessor directives."""
    taken: list[str] = []
    for raw in lines[start:]:
        if len(taken) >= count:
            break
        code = strip_line_comment(raw).strip()
        if not code or code.startswith("#"):
            continue
        taken.append(raw)
    return "\n".join(taken)


def check_forward_contract(src: Path) -> list[Finding]:
    """Every `Tensor X::forward(` definition opens with a shape contract."""
    findings = []
    sig = re.compile(r"\bTensor\s+(\w+)::forward\s*\(")
    for path in iter_sources(src, (".cpp",)):
        lines = path.read_text().splitlines()
        for i, line in enumerate(lines):
            match = sig.search(strip_line_comment(line))
            if not match:
                continue
            window = effective_window(lines, i, CONTRACT_WINDOW_LINES)
            if "magic-lint: no-contract(" in window:
                continue
            if not any(token in window for token in CONTRACT_TOKENS):
                findings.append(
                    Finding(
                        "forward-contract",
                        path,
                        i + 1,
                        f"{match.group(1)}::forward does not open with a shape "
                        "contract (MAGIC_SHAPE_CONTRACT/check_shape_contract "
                        f"within the first {CONTRACT_WINDOW_LINES} code lines)",
                    )
                )
    return findings


def check_conv_op_contract(src: Path) -> list[Finding]:
    """Every operator entry point in src/nn/graph_conv* opens with a shape
    contract. Unlike forward-contract this also covers
    `void X::forward_inference_into(` — the fused inference path writes
    through a raw pointer, so a missing contract there corrupts memory
    instead of throwing."""
    findings = []
    sig = re.compile(
        r"\b(?:Tensor|void)\s+(\w+)::(forward|forward_inference_into)\s*\("
    )
    for path in iter_sources(src, (".cpp",)):
        rel = path.relative_to(src).as_posix()
        if not rel.startswith("nn/graph_conv"):
            continue
        lines = path.read_text().splitlines()
        for i, line in enumerate(lines):
            match = sig.search(strip_line_comment(line))
            if not match:
                continue
            window = effective_window(lines, i, CONTRACT_WINDOW_LINES)
            if "magic-lint: no-contract(" in window:
                continue
            if not any(token in window for token in CONTRACT_TOKENS):
                findings.append(
                    Finding(
                        "conv-op-contract",
                        path,
                        i + 1,
                        f"{match.group(1)}::{match.group(2)} does not open "
                        "with a shape contract (every GraphConvOp entry "
                        "point must check its input within the first "
                        f"{CONTRACT_WINDOW_LINES} code lines)",
                    )
                )
    return findings


def check_mutex_annotation(src: Path) -> list[Finding]:
    findings = []
    std_mutex = re.compile(r"\bstd::(?:recursive_|timed_|shared_)?mutex\b")
    # A util::Mutex declaration: optional mutable, optional util::, a name.
    decl = re.compile(r"^\s*(?:mutable\s+)?(?:util::)?Mutex\s+(\w+)\s*;")
    for path in iter_sources(src, (".cpp", ".hpp")):
        rel = path.relative_to(src).as_posix()
        lines = path.read_text().splitlines()
        # Annotations only count in code — a MAGIC_GUARDED_BY inside a
        # comment must not satisfy the rule.
        code_text = "\n".join(strip_line_comment(l) for l in lines)
        for i, raw in enumerate(lines):
            line = strip_line_comment(raw)
            if std_mutex.search(line) and rel not in STD_MUTEX_ALLOWED:
                findings.append(
                    Finding(
                        "mutex-annotation",
                        path,
                        i + 1,
                        "raw std::mutex is invisible to -Wthread-safety; "
                        "use util::Mutex (src/util/mutex.hpp)",
                    )
                )
            match = decl.match(line)
            if not match or rel == "util/mutex.hpp":
                continue
            name = match.group(1)
            context = raw + ("" if i == 0 else lines[i - 1])
            if "magic-lint: guards(" in context:
                continue
            if f"MAGIC_GUARDED_BY({name})" not in code_text:
                findings.append(
                    Finding(
                        "mutex-annotation",
                        path,
                        i + 1,
                        f"util::Mutex '{name}' has no MAGIC_GUARDED_BY({name}) "
                        "field in this file (annotate what it protects, or "
                        "mark the declaration `// magic-lint: guards(<what>)`)",
                    )
                )
    return findings


def check_guard_names(src: Path) -> list[Finding]:
    """Every plain-identifier MAGIC_GUARDED_BY(name) names a Mutex declared
    in the same file. Complements mutex-annotation (which checks every mutex
    is *used* by some annotation): this direction catches the annotation
    whose argument no longer matches any mutex after a rename."""
    findings = []
    guard = re.compile(r"\bMAGIC_(?:PT_)?GUARDED_BY\(([^)]*)\)")
    decl = re.compile(r"^\s*(?:mutable\s+)?(?:util::)?Mutex\s+(\w+)\s*;")
    for path in iter_sources(src, (".cpp", ".hpp")):
        rel = path.relative_to(src).as_posix()
        if rel == "util/thread_annotations.hpp":  # the macro definitions
            continue
        lines = path.read_text().splitlines()
        declared = {
            m.group(1)
            for line in lines
            if (m := decl.match(strip_line_comment(line)))
        }
        for i, raw in enumerate(lines):
            code = strip_line_comment(raw)
            if code.lstrip().startswith("#"):
                continue
            for match in guard.finditer(code):
                arg = match.group(1).strip()
                # Guards that reach through an object are legitimate
                # (e.g. guarded by the enclosing class's mutex via a
                # pointer); the same-file check only applies to plain
                # identifiers.
                if not re.fullmatch(r"\w+", arg):
                    continue
                if arg not in declared:
                    findings.append(
                        Finding(
                            "guard-names",
                            path,
                            i + 1,
                            f"MAGIC_GUARDED_BY({arg}) names no util::Mutex "
                            "declared in this file — the guard is inert "
                            "(typo'd or renamed-away mutex?)",
                        )
                    )
    return findings


def check_no_endl(src: Path) -> list[Finding]:
    findings = []
    for path in iter_sources(src, (".cpp", ".hpp")):
        for i, raw in enumerate(path.read_text().splitlines()):
            if "std::endl" in strip_line_comment(raw):
                findings.append(
                    Finding(
                        "no-endl",
                        path,
                        i + 1,
                        "std::endl flushes implicitly; write '\\n' and flush "
                        "explicitly where needed",
                    )
                )
    return findings


def check_no_naked_thread(src: Path) -> list[Finding]:
    findings = []
    # std::thread as a type/constructor; std::thread::hardware_concurrency
    # (static member access) and std::this_thread do not match.
    naked = re.compile(r"\bstd::thread\b(?!\s*::)")
    for path in iter_sources(src, (".cpp", ".hpp")):
        rel = path.relative_to(src).as_posix()
        if rel in NAKED_THREAD_ALLOWED:
            continue
        for i, raw in enumerate(path.read_text().splitlines()):
            if naked.search(strip_line_comment(raw)):
                findings.append(
                    Finding(
                        "no-naked-thread",
                        path,
                        i + 1,
                        "raw std::thread has no join-by-construction guarantee;"
                        " use util::ThreadPool or util::JoinThread",
                    )
                )
    return findings


def check_simd_intrinsics(src: Path) -> list[Finding]:
    """Raw vector intrinsics live only under src/tensor/simd/."""
    findings = []
    # Intrinsic calls (_mm_add_pd, _mm256_fmadd_pd, ...), vector register
    # types (__m128, __m256d, ...), and the intrinsic headers.
    intrinsic = re.compile(
        r"\b(?:_mm\d*_\w+|__m\d{3}[a-z]*)\b"
        r"|#\s*include\s*<(?:immintrin|x86intrin|[a-z]+mmintrin)\.h>"
    )
    for path in iter_sources(src, (".cpp", ".hpp")):
        rel = path.relative_to(src).as_posix()
        if rel.startswith(SIMD_ALLOWED_PREFIX):
            continue
        for i, raw in enumerate(path.read_text().splitlines()):
            if intrinsic.search(strip_line_comment(raw)):
                findings.append(
                    Finding(
                        "simd-intrinsics",
                        path,
                        i + 1,
                        "raw vector intrinsics outside src/tensor/simd/; "
                        "dispatch through simd::KernelTable "
                        "(src/tensor/simd/kernels.hpp) instead",
                    )
                )
    return findings


def check_header_standalone(src: Path, cxx: str) -> list[Finding]:
    findings = []
    for path in iter_sources(src, (".hpp",)):
        cmd = [
            cxx,
            "-std=c++20",
            "-fsyntax-only",
            "-x", "c++",
            "-I", str(src),
            str(path),
        ]
        proc = subprocess.run(cmd, capture_output=True, text=True)
        if proc.returncode != 0:
            first = proc.stderr.strip().splitlines()
            detail = first[0] if first else "compiler error"
            findings.append(
                Finding(
                    "header-standalone",
                    path,
                    1,
                    f"header does not compile standalone: {detail}",
                )
            )
    return findings


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", default=None, help="repo root (default: script's parent's parent)")
    parser.add_argument("--skip-headers", action="store_true",
                        help="skip the (slower) header-standalone compile checks")
    parser.add_argument("--report", default=None, help="also write findings to this file")
    parser.add_argument("--cxx", default="c++", help="compiler for header-standalone (default: c++)")
    parser.add_argument("--rules", default=",".join(ALL_RULES),
                        help="comma-separated subset of rules to run")
    args = parser.parse_args()

    root = Path(args.root) if args.root else Path(__file__).resolve().parent.parent
    src = root / "src"
    if not src.is_dir():
        print(f"magic_lint: no src/ under {root}", file=sys.stderr)
        return 2

    rules = [r.strip() for r in args.rules.split(",") if r.strip()]
    unknown = [r for r in rules if r not in ALL_RULES]
    if unknown:
        print(f"magic_lint: unknown rule(s): {', '.join(unknown)}", file=sys.stderr)
        return 2

    findings: list[Finding] = []
    if "forward-contract" in rules:
        findings += check_forward_contract(src)
    if "conv-op-contract" in rules:
        findings += check_conv_op_contract(src)
    if "mutex-annotation" in rules:
        findings += check_mutex_annotation(src)
    if "guard-names" in rules:
        findings += check_guard_names(src)
    if "no-endl" in rules:
        findings += check_no_endl(src)
    if "no-naked-thread" in rules:
        findings += check_no_naked_thread(src)
    if "simd-intrinsics" in rules:
        findings += check_simd_intrinsics(src)
    if "header-standalone" in rules and not args.skip_headers:
        findings += check_header_standalone(src, args.cxx)

    lines = [f.render(root) for f in findings]
    report = "\n".join(lines)
    if args.report:
        Path(args.report).write_text(
            (report + "\n") if report else "magic_lint: clean\n"
        )
    if findings:
        print(report)
        print(f"magic_lint: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    print(f"magic_lint: clean ({len(rules)} rule(s))")
    return 0


if __name__ == "__main__":
    sys.exit(main())
