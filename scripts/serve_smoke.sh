#!/usr/bin/env bash
# scripts/serve_smoke.sh — end-to-end smoke test of the magicd scan daemon.
#
# Exercises the full serving path with real binaries (no gtest):
#   1. magicd --selftrain: trains a tiny model and writes demo listings;
#   2. stdio mode: pipes scan requests through magicd, asserts JSON verdicts;
#   3. model registry over stdio: `reload` hot-swap, a per-request
#      `<id>@<version>` override, `shadow` mirroring, and the registry
#      counters in the stats payload;
#   4. socket mode: epoll daemon preloaded with a second version and shadow
#      mode on (--load/--shadow), scans via malware_scanner --serve, then
#      SIGTERMs the exact daemon PID and asserts a graceful exit.
#
# Usage:
#   scripts/serve_smoke.sh [BUILD_DIR]      # default: build
#
# Exits non-zero on the first failed assertion.

set -euo pipefail

ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD_DIR="${1:-${ROOT}/build}"
MAGICD="${BUILD_DIR}/src/serve/magicd"
SCANNER="${BUILD_DIR}/examples/malware_scanner"

WORK="$(mktemp -d /tmp/magicd_smoke.XXXXXX)"
SOCKET="${WORK}/magicd.sock"
MODEL="${WORK}/model.txt"
DAEMON_PID=""
STDIO_PID=""
cleanup() {
  [[ -n "${DAEMON_PID}" ]] && kill "${DAEMON_PID}" 2>/dev/null || true
  [[ -n "${STDIO_PID}" ]] && kill "${STDIO_PID}" 2>/dev/null || true
  rm -rf "${WORK}"
}
trap cleanup EXIT

fail() { echo "FAIL: $*" >&2; exit 1; }

[[ -x "${MAGICD}" ]] || fail "magicd not built at ${MAGICD}"
[[ -x "${SCANNER}" ]] || fail "malware_scanner not built at ${SCANNER}"

echo "==> selftrain (tiny corpus) + demo listings"
"${MAGICD}" --selftrain "${MODEL}" --samples-dir "${WORK}/samples" \
  --scale 0.002 --epochs 4 --seed 7
[[ -s "${MODEL}" ]] || fail "selftrain produced no model"
SAMPLES=()
while IFS= read -r f; do SAMPLES+=("$f"); done \
  < <(find "${WORK}/samples" -name '*.asm' | sort | head -3)
[[ "${#SAMPLES[@]}" -eq 3 ]] || fail "expected 3 demo listings, got ${#SAMPLES[@]}"

echo "==> stdio mode: 3 path requests + 1 duplicate + stats"
STDIO_OUT="${WORK}/stdio.out"
STDIO_IN="${WORK}/stdio.in"
mkfifo "${STDIO_IN}"
"${MAGICD}" --model "${MODEL}" --workers 2 < "${STDIO_IN}" > "${STDIO_OUT}" &
STDIO_PID=$!
exec 3>"${STDIO_IN}"
for i in 0 1 2; do
  echo "req${i} path ${SAMPLES[$i]}" >&3
done
# Wait for the first three verdicts before sending the duplicate, so the
# duplicate is a guaranteed verdict-cache hit rather than racing its
# original through the miss path. Responses only flush when the protocol
# loop reads a line, so '#' comment lines (ignored by the parser) pump it.
for _ in $(seq 1 200); do
  [[ "$(grep -c '"id":"req' "${STDIO_OUT}" || true)" -ge 3 ]] && break
  echo "# pump" >&3
  sleep 0.05
done
[[ "$(grep -c '"id":"req' "${STDIO_OUT}")" -ge 3 ]] \
  || fail "stdio mode: first 3 verdicts never flushed"
# Duplicate of sample 0: its verdict is already cached, so this must hit.
echo "req3 path ${SAMPLES[0]}" >&3
echo "stats" >&3
echo "quit" >&3
exec 3>&-
wait "${STDIO_PID}" || fail "magicd stdio exited nonzero"
STDIO_PID=""
[[ "$(wc -l < "${STDIO_OUT}")" -eq 5 ]] || fail "stdio mode: expected 5 response lines"
for i in 0 1 2 3; do
  grep -q "\"id\":\"req${i}\"" "${STDIO_OUT}" || fail "stdio mode: no response for req${i}"
done
[[ "$(grep -c '"status":"ok"' "${STDIO_OUT}")" -eq 4 ]] \
  || fail "stdio mode: expected 4 ok verdicts: $(cat "${STDIO_OUT}")"
grep -q '"completed":4' "${STDIO_OUT}" || fail "stdio mode: stats line wrong: $(tail -1 "${STDIO_OUT}")"
# The verdict cache is on by default (64 MiB); the duplicate request above
# must show up as exactly one hit in the stats cache block.
grep -q '"cache":{' "${STDIO_OUT}" || fail "stdio mode: stats line missing cache block: $(tail -1 "${STDIO_OUT}")"
grep -q '"cache":{"enabled":true' "${STDIO_OUT}" || fail "stdio mode: cache not enabled: $(tail -1 "${STDIO_OUT}")"
grep -q '"hits":1' "${STDIO_OUT}" || fail "stdio mode: expected 1 cache hit for the duplicate: $(tail -1 "${STDIO_OUT}")"
# The stats payload carries the process-wide obs registry alongside the
# per-server snapshot (serve latency quantiles live there).
grep -q '"obs":{' "${STDIO_OUT}" || fail "stdio mode: stats line missing obs registry: $(tail -1 "${STDIO_OUT}")"
grep -q '"serve.latency_ms"' "${STDIO_OUT}" || fail "stdio mode: stats line missing serve.latency_ms: $(tail -1 "${STDIO_OUT}")"
# The packed-batch engine is the default: the stats snapshot must report the
# fused-batch counter (0 is fine for sequential stdio requests — the field
# itself proves the packed execution path is wired into the server).
grep -q '"packed_batches":' "${STDIO_OUT}" || fail "stdio mode: stats line missing packed_batches: $(tail -1 "${STDIO_OUT}")"
echo "    3/3 verdicts ok"

echo "==> model registry: reload hot-swap + version override + shadow (stdio)"
REG_OUT="${WORK}/registry.out"
{
  echo "r0 path ${SAMPLES[0]}"
  echo "reload v2 ${MODEL}"
  echo "rv@v1 path ${SAMPLES[1]}"
  echo "shadow v1 1.0"
  echo "r2 path ${SAMPLES[2]}"
  echo "stats"
  echo "quit"
} | "${MAGICD}" --model "${MODEL}" --workers 2 > "${REG_OUT}" \
  || fail "registry stdio: magicd exited nonzero"
[[ "$(wc -l < "${REG_OUT}")" -eq 6 ]] \
  || fail "registry stdio: expected 6 response lines: $(cat "${REG_OUT}")"
grep -q '"op":"reload"' "${REG_OUT}" || fail "registry stdio: no reload reply"
grep -q '"default":"v2"' "${REG_OUT}" \
  || fail "registry stdio: reload did not swap the default: $(cat "${REG_OUT}")"
# The @v1 override routes to the pre-reload version; the suffix is stripped
# from the echoed id.
grep -q '"id":"rv"' "${REG_OUT}" || fail "registry stdio: no override response"
grep -q '"op":"shadow"' "${REG_OUT}" || fail "registry stdio: no shadow reply"
[[ "$(grep -c '"status":"ok"' "${REG_OUT}")" -eq 5 ]] \
  || fail "registry stdio: expected 5 ok lines (3 scans + 2 control): $(cat "${REG_OUT}")"
# Registry counters in the stats payload: one reload, shadow v1 at 1.0, and
# exactly the one default-routed scan after `shadow` was mirrored.
grep -q '"registry":{' "${REG_OUT}" || fail "registry stdio: stats missing registry block: $(tail -1 "${REG_OUT}")"
grep -q '"reloads":1' "${REG_OUT}" || fail "registry stdio: stats missing reloads=1: $(tail -1 "${REG_OUT}")"
grep -q '"shadow":{"version":"v1","fraction":1' "${REG_OUT}" \
  || fail "registry stdio: stats missing shadow config: $(tail -1 "${REG_OUT}")"
grep -q '"mirrored":1' "${REG_OUT}" || fail "registry stdio: stats missing mirrored=1: $(tail -1 "${REG_OUT}")"
# Each listed version carries its graph-conv operator (PR 10 zoo): the
# parallel operators array must be present and name the paper operator for
# the self-trained default model.
grep -q '"operators":\["paper","paper"\]' "${REG_OUT}" \
  || fail "registry stdio: stats missing per-version operators: $(tail -1 "${REG_OUT}")"
echo "    reload + override + shadow ok, registry counters present"

echo "==> socket mode: epoll daemon (+preloaded v2, shadow 0.5) + malware_scanner --serve client"
"${MAGICD}" --model "${MODEL}" --socket "${SOCKET}" --workers 2 \
  --load v2="${MODEL}" --shadow v2:0.5 &
DAEMON_PID=$!
for _ in $(seq 1 100); do
  [[ -S "${SOCKET}" ]] && break
  kill -0 "${DAEMON_PID}" 2>/dev/null || fail "daemon died during startup"
  sleep 0.05
done
[[ -S "${SOCKET}" ]] || fail "daemon socket never appeared"

CLIENT_OUT="${WORK}/client.out"
"${SCANNER}" --serve "${SOCKET}" "${SAMPLES[@]}" > "${CLIENT_OUT}"
[[ "$(grep -c '"status":"ok"' "${CLIENT_OUT}")" -eq 3 ]] \
  || fail "socket mode: expected 3 ok verdicts: $(cat "${CLIENT_OUT}")"
grep -q 'server-stats' "${CLIENT_OUT}" || fail "socket mode: no stats line"
# The socket stats payload carries the registry block (preloaded v2, shadow
# at 0.5: of 3 default-routed scans exactly one crosses the floor((n+1)*f)
# threshold) and the reactor's event-loop counters.
grep -q '"registry":{' "${CLIENT_OUT}" || fail "socket mode: stats missing registry block: $(cat "${CLIENT_OUT}")"
grep -q '"shadow":{"version":"v2"' "${CLIENT_OUT}" \
  || fail "socket mode: stats missing shadow config: $(cat "${CLIENT_OUT}")"
grep -q '"mirrored":1' "${CLIENT_OUT}" || fail "socket mode: expected exactly 1 mirrored scan: $(cat "${CLIENT_OUT}")"
grep -q '"reactor":{' "${CLIENT_OUT}" || fail "socket mode: stats missing reactor block: $(cat "${CLIENT_OUT}")"
echo "    3/3 verdicts ok over the socket, registry + reactor stats present"

echo "==> SIGTERM graceful drain"
kill -TERM "${DAEMON_PID}"
DAEMON_STATUS=0
wait "${DAEMON_PID}" || DAEMON_STATUS=$?
DAEMON_PID=""
[[ "${DAEMON_STATUS}" -eq 0 ]] || fail "daemon exited ${DAEMON_STATUS} after SIGTERM"
[[ ! -S "${SOCKET}" ]] || fail "socket file not removed on drain"
echo "    daemon drained cleanly (exit 0, socket unlinked)"

echo "serve smoke: all checks passed"
