// Figure 8: malware family distribution in the YANCFG dataset.
//
// Mirrors bench_fig7 for the 13-family VirusTotal-labelled corpus
// (16,351 samples in the paper).

#include "bench_util.hpp"

#include "data/corpus.hpp"
#include "util/string_util.hpp"

int main(int argc, char** argv) {
  using namespace magic;
  bench::BenchOptions defaults;
  defaults.scale = 0.015;
  const auto opt = bench::parse_options(argc, argv, defaults);
  bench::banner("Figure 8: YANCFG family distribution",
                "Fig. 8 of Yan et al., DSN 2019", opt);

  util::ThreadPool pool(opt.threads);
  const auto specs = data::yancfg_family_specs();
  data::Dataset d = data::yancfg_like_corpus(opt.scale, opt.seed, pool);
  const auto counts = d.family_counts();

  std::size_t paper_total = 0;
  for (const auto& s : specs) paper_total += s.corpus_count;

  util::Table table({"Family", "Paper count", "Paper share", "Generated", "Share"});
  for (std::size_t f = 0; f < specs.size(); ++f) {
    table.add_row({specs[f].name, std::to_string(specs[f].corpus_count),
                   util::format_fixed(100.0 * static_cast<double>(specs[f].corpus_count) /
                                          static_cast<double>(paper_total),
                                      1) + "%",
                   std::to_string(counts[f]),
                   util::format_fixed(100.0 * static_cast<double>(counts[f]) /
                                          static_cast<double>(d.size()),
                                      1) + "%"});
  }
  table.print(std::cout);

  std::cout << "\npaper total: " << paper_total << " samples; generated: " << d.size()
            << " (scale " << opt.scale << ", min 10 per family)\n";
  std::cout << "generated corpus structure: mean " << util::format_fixed(d.mean_vertices(), 1)
            << " basic blocks per CFG, p90 " << d.vertex_count_percentile(90.0)
            << ", max " << d.vertex_count_percentile(100.0) << "\n";
  return 0;
}
