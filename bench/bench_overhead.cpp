// §V-E execution overhead: ACFG construction time per sample, classifier
// training time per instance, and prediction time per instance.
//
// Paper (Intel i7-6850K + GTX 1080 Ti): ~5.8 s/sample ACFG construction for
// MSKCFG binaries (graphs with thousands of blocks), 29.69 +/- 4.90 ms
// training per instance, 11.33 +/- 1.35 ms prediction per instance — and
// the conclusion that MAGIC "is actionable for online malware
// classification". Our synthetic samples are far smaller, so absolute
// numbers are smaller too; the claim under test is per-instance cost being
// in the online-usable range (milliseconds, not seconds).

#include <benchmark/benchmark.h>

#include "acfg/extractor.hpp"
#include "bench_util.hpp"
#include "data/corpus.hpp"
#include "data/program_generator.hpp"
#include "magic/trainer.hpp"
#include "ml/features.hpp"
#include "nn/loss.hpp"
#include "nn/optimizer.hpp"

namespace {

using namespace magic;

const std::vector<std::string>& sample_listings() {
  static const std::vector<std::string> listings = [] {
    std::vector<std::string> out;
    data::ProgramGenerator gen(data::mskcfg_family_specs()[2], util::Rng(1));
    for (int i = 0; i < 16; ++i) out.push_back(gen.generate_listing());
    return out;
  }();
  return listings;
}

const data::Dataset& small_dataset() {
  static const data::Dataset d = [] {
    util::ThreadPool pool(1);
    return data::mskcfg_like_corpus(0.002, 7, pool);
  }();
  return d;
}

core::DgcnnModel make_model(const data::Dataset& d) {
  core::DgcnnConfig cfg = bench::best_mskcfg_config();
  cfg.num_classes = d.num_families();
  util::Rng rng(3);
  return core::DgcnnModel(cfg, rng, 16);
}

/// ACFG construction: parse + tag + Algorithm 2 + Table I extraction.
void BM_AcfgConstruction(benchmark::State& state) {
  const auto& listings = sample_listings();
  std::size_t i = 0;
  std::size_t vertices = 0;
  for (auto _ : state) {
    acfg::Acfg a = acfg::extract_acfg_from_listing(listings[i++ % listings.size()]);
    vertices += a.num_vertices();
    benchmark::DoNotOptimize(a);
  }
  state.counters["blocks/graph"] =
      static_cast<double>(vertices) / static_cast<double>(state.iterations());
}
BENCHMARK(BM_AcfgConstruction)->Unit(benchmark::kMillisecond);

/// Training: one forward + backward + (amortized) Adam step per instance,
/// mirroring the paper's "classifier training time per instance".
void BM_TrainingPerInstance(benchmark::State& state) {
  const data::Dataset& d = small_dataset();
  core::DgcnnModel model = make_model(d);
  model.set_training(true);
  nn::Adam adam(model.parameters(), 1e-3);
  std::size_t i = 0;
  for (auto _ : state) {
    const acfg::Acfg& sample = d.samples[i++ % d.size()];
    nn::NllLoss loss;
    loss.forward(model.forward(sample), static_cast<std::size_t>(sample.label));
    model.backward(loss.backward());
    if (i % 10 == 0) {  // batch size 10 as in the best MSKCFG model
      adam.step();
      adam.zero_grad();
    }
  }
}
BENCHMARK(BM_TrainingPerInstance)->Unit(benchmark::kMillisecond);

/// Prediction: eval-mode forward pass per instance.
void BM_PredictionPerInstance(benchmark::State& state) {
  const data::Dataset& d = small_dataset();
  core::DgcnnModel model = make_model(d);
  model.set_training(false);
  std::size_t i = 0;
  for (auto _ : state) {
    const acfg::Acfg& sample = d.samples[i++ % d.size()];
    benchmark::DoNotOptimize(model.forward(sample));
  }
}
BENCHMARK(BM_PredictionPerInstance)->Unit(benchmark::kMillisecond);

/// Aggregate-feature extraction (baseline pipelines).
void BM_AggregateFeatures(benchmark::State& state) {
  const data::Dataset& d = small_dataset();
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ml::aggregate_features(d.samples[i++ % d.size()]));
  }
}
BENCHMARK(BM_AggregateFeatures)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  std::cout << "=== Section V-E: execution overhead ===\n"
            << "paper: ACFG build ~5.8 s/sample (graphs with thousands of\n"
            << "blocks), training 29.69 ms/instance, prediction 11.33\n"
            << "ms/instance. Synthetic graphs here are ~100x smaller, so\n"
            << "absolute times scale down accordingly.\n\n";
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
