// Concept drift (the paper's stated future work, §V-E): "It is possible
// that malware development trends after the collection of these two
// datasets introduce new challenges to the malware classification problem.
// We plan to test our models with the latest malware samples."
//
// We simulate evolution: train MAGIC on the base MSKCFG-style corpus, then
// evaluate the frozen model on corpora generated from progressively drifted
// family specs (more junk-code polymorphism, more per-sample variation, a
// pull toward the generic profile, slight size growth). Reported: accuracy
// and macro F1 as a function of drift, plus a model retrained at each level
// as the "cloud keeps retraining" upper bound of §VII.

#include "bench_util.hpp"

#include "data/corpus.hpp"
#include "magic/classifier.hpp"
#include "util/string_util.hpp"
#include "util/timer.hpp"

namespace {

using namespace magic;

/// Accuracy + macro F1 of `clf` over a whole dataset.
std::pair<double, double> score(core::MagicClassifier& clf, const data::Dataset& d) {
  std::vector<std::size_t> idx(d.size());
  for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = i;
  core::EvalResult eval = clf.evaluate(d, idx);
  return {eval.confusion.accuracy(), eval.confusion.macro_f1()};
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchOptions defaults;
  defaults.scale = 0.012;
  defaults.epochs = 16;
  const auto opt = bench::parse_options(argc, argv, defaults);
  bench::banner("Concept drift: frozen model vs evolving malware",
                "future-work experiment motivated by §V-E / §VII", opt);

  util::ThreadPool pool(opt.threads);
  const auto base_specs = data::mskcfg_family_specs();
  data::Dataset train_corpus = data::generate_corpus(base_specs, opt.scale, opt.seed, pool);
  std::cout << "training corpus: " << train_corpus.size() << " samples\n";

  // Train once on the base distribution. A cheaper model than the Table II
  // best keeps this bench fast; the drift *trend* is what matters.
  core::DgcnnConfig config;
  config.pooling = core::PoolingType::SortPooling;
  config.remaining = core::RemainingLayer::WeightedVertices;
  config.graph_conv_channels = {32, 32, 32, 32};
  config.dropout_rate = 0.1;
  core::TrainOptions train;
  train.epochs = opt.epochs;
  train.learning_rate = 3e-3;
  train.lr_patience = 3;
  train.lr_factor = 0.5;
  train.balance_families = opt.balance;
  train.balance_strength = opt.balance_strength;
  train.seed = opt.seed;

  util::Timer timer;
  core::MagicClassifier frozen(config, train, opt.seed);
  frozen.fit(train_corpus, 0.15);
  std::cout << "trained frozen model in " << util::format_fixed(timer.seconds(), 1)
            << "s\n\n";

  util::Table table({"Drift", "Frozen accuracy", "Frozen macro F1",
                     "Retrained accuracy", "Retrained macro F1"});
  for (double drift : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    const auto drifted_specs = data::drift_family_specs(base_specs, drift);
    // New seed: these samples are "collected later", never seen in training.
    data::Dataset future = data::generate_corpus(
        drifted_specs, opt.scale, opt.seed + 1 + static_cast<std::uint64_t>(drift * 100),
        pool);
    const auto [facc, ff1] = score(frozen, future);

    // §VII upper bound: the cloud retrains on the drifted distribution.
    core::MagicClassifier retrained(config, train, opt.seed + 7);
    retrained.fit(future, 0.3);
    // Evaluate the retrained model on a *second* drifted sample set so it is
    // not scored on its own training data.
    data::Dataset future2 = data::generate_corpus(
        drifted_specs, opt.scale, opt.seed + 1000 + static_cast<std::uint64_t>(drift * 100),
        pool);
    const auto [racc, rf1] = score(retrained, future2);

    table.add_row({util::format_fixed(drift, 2), util::format_fixed(facc, 4),
                   util::format_fixed(ff1, 4), util::format_fixed(racc, 4),
                   util::format_fixed(rf1, 4)});
    std::cout << "drift " << drift << " done\n";
  }
  std::cout << "\n";
  table.print(std::cout);
  std::cout << "\nreading: the frozen model's accuracy should decay with drift\n"
               "while retraining recovers most of it — quantifying how often\n"
               "the cloud-hosted MAGIC of §VII needs fresh labels.\n";
  return 0;
}
