// Figure 11: per-family F1 comparison between MAGIC and ESVC [8] on the
// YANCFG dataset, reported as relative and absolute improvement.
//
// Expected shape (paper): MAGIC wins on ten of twelve malware families
// (largest gains on Bagle/Koobface/Ldpinch/Lmir), loses visibly only on
// Rbot, and roughly ties on Hupigon. Benign is excluded as in the paper.

#include "bench_util.hpp"

#include "baselines/svm.hpp"
#include "data/corpus.hpp"
#include "acfg/attributes.hpp"
#include "ml/features.hpp"
#include "util/string_util.hpp"

int main(int argc, char** argv) {
  using namespace magic;
  bench::BenchOptions defaults;
  defaults.scale = 0.02;
  defaults.epochs = 24;
  defaults.balance_strength = 0.5;
  const auto opt = bench::parse_options(argc, argv, defaults);
  bench::banner("Figure 11: MAGIC vs ESVC per-family F1 (YANCFG)",
                "Fig. 11 of Yan et al., DSN 2019", opt);

  util::ThreadPool pool(opt.threads);
  data::Dataset d = data::yancfg_like_corpus(opt.scale, opt.seed, pool);
  std::cout << "corpus: " << d.size() << " samples\n\n";

  // MAGIC per-family F1 from K-fold CV.
  core::CvResult magic_cv = bench::run_cv(bench::best_yancfg_config(), d, opt, pool);

  // ESVC stand-in: one-vs-rest linear SVM ensemble evaluated over the same
  // fold structure. The paper's ESVC [8] chains classifiers over
  // heterogeneous *non-CFG* features (strings, PE metadata, byte statistics),
  // so the stand-in sees only the code-statistics aggregates - the
  // graph-structure statistics (offspring/degree/edge features) are zeroed.
  // That is exactly the contrast Fig. 11 demonstrates: what structure buys.
  ml::FeatureMatrix features = ml::aggregate_feature_matrix(d.samples);
  {
    const std::size_t c = acfg::kNumChannels;
    std::vector<std::size_t> structural_dims;
    for (std::size_t stat = 0; stat < 4; ++stat) {
      structural_dims.push_back(acfg::kOffspring * 4 + stat);
      structural_dims.push_back(acfg::kVertexInsts * 4 + stat);
    }
    for (std::size_t tail = c * 4; tail < ml::aggregate_feature_count(c); ++tail) {
      structural_dims.push_back(tail);
    }
    for (auto& row : features.rows) {
      for (std::size_t dim : structural_dims) row[dim] = 0.0;
    }
  }
  util::Rng fold_rng(opt.seed);
  const auto splits = data::stratified_k_fold(d, opt.folds, fold_rng);
  ml::ConfusionMatrix esvc_cm(d.num_families());
  for (const auto& split : splits) {
    ml::FeatureMatrix train;
    for (std::size_t i : split.train) {
      train.rows.push_back(features.rows[i]);
      train.labels.push_back(features.labels[i]);
    }
    baselines::EnsembleSvc svc({.lambda = 1e-4, .epochs = 15, .seed = opt.seed});
    svc.fit(train, d.num_families());
    for (std::size_t i : split.validation) {
      esvc_cm.add(features.labels[i], svc.predict(features.rows[i]));
    }
  }

  util::Table table({"Family", "MAGIC F1", "ESVC F1", "Absolute diff",
                     "Relative diff %"});
  for (std::size_t f = 0; f < d.num_families(); ++f) {
    if (d.family_names[f] == "Benign") continue;  // excluded in Fig. 11
    const double mf1 = magic_cv.confusion.f1(f);
    const double ef1 = esvc_cm.f1(f);
    const double abs_diff = mf1 - ef1;
    const double rel_diff = ef1 > 0.0 ? 100.0 * abs_diff / ef1 : 0.0;
    table.add_row({d.family_names[f], util::format_fixed(mf1, 4),
                   util::format_fixed(ef1, 4), util::format_fixed(abs_diff, 4),
                   util::format_fixed(rel_diff, 1)});
  }
  table.print(std::cout);

  std::size_t wins = 0, families = 0;
  for (std::size_t f = 0; f < d.num_families(); ++f) {
    if (d.family_names[f] == "Benign") continue;
    ++families;
    if (magic_cv.confusion.f1(f) > esvc_cm.f1(f)) ++wins;
  }
  std::cout << "\nMAGIC beats the SVM ensemble on " << wins << "/" << families
            << " malware families (paper: 10/12, with the largest absolute\n"
               "gains >= 0.2 on Bagle, Koobface, Ldpinch and Lmir).\n";
  return 0;
}
