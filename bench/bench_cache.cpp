// bench_cache: verdict-cache and packed-corpus benchmarks.
//
// Part 1 — serve throughput with the content-addressed verdict cache on vs
// off, across duplicate rates of 0%, 50% and 90%. Real scan traffic is
// heavily duplicated (the same samples get uploaded over and over; MSKCFG
// itself is dominated by a few prolific families), which is exactly what a
// content-addressed cache converts from forward passes into hash lookups.
// At 0% duplicates the cache can only lose (every lookup misses and the
// hash is pure overhead) — that point is reported honestly as the cost
// floor. The process exits nonzero unless cache-on beats cache-off at the
// 90% point, so CI gates the subsystem on actually paying for itself.
//
// Part 2 — corpus load: the same generated corpus is saved both as the
// line-oriented text format (acfg/serialization.hpp) and as the packed
// mmap format (data/corpus_file.hpp), then loaded back from each. Reported:
// text parse time, packed open time (mmap + integrity pass only) and
// packed materialize time (open + deep copy into a Dataset). The gate
// requires packed materialization to beat the text parse.
//
// Flags:
//   --samples N    scan requests per sweep point (default 300)
//   --scale S      corpus scale (default 0.002)
//   --epochs N     training epochs (default 6)
//   --seed X       master seed (default 2019)
//   --out FILE     JSON output path (default BENCH_cache.json)
//   --quick        smaller sweep for smoke runs
//   --metrics-out FILE  enable magic::obs and dump the process-wide
//                  metrics snapshot (cache.* counters included) as JSON

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "acfg/extractor.hpp"
#include "acfg/serialization.hpp"
#include "data/corpus.hpp"
#include "data/corpus_file.hpp"
#include "data/program_generator.hpp"
#include "magic/classifier.hpp"
#include "obs/metrics.hpp"
#include "serve/server.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace {

using namespace magic;

struct Options {
  std::size_t samples = 300;
  double scale = 0.002;
  std::size_t epochs = 6;
  std::uint64_t seed = 2019;
  std::string out = "BENCH_cache.json";
  std::string metrics_out;
  bool quick = false;
};

Options parse(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* flag) -> std::string {
      if (i + 1 >= argc) {
        std::cerr << flag << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--samples") opt.samples = std::stoul(next("--samples"));
    else if (arg == "--scale") opt.scale = std::stod(next("--scale"));
    else if (arg == "--epochs") opt.epochs = std::stoul(next("--epochs"));
    else if (arg == "--seed") opt.seed = std::stoull(next("--seed"));
    else if (arg == "--out") opt.out = next("--out");
    else if (arg == "--metrics-out") opt.metrics_out = next("--metrics-out");
    else if (arg == "--quick") opt.quick = true;
    else {
      std::cerr << "unknown flag " << arg << "\n"
                << "usage: bench_cache [--samples N] [--scale S] [--epochs N] "
                   "[--seed X] [--out FILE] [--quick] [--metrics-out FILE]\n";
      std::exit(2);
    }
  }
  if (opt.quick) {
    opt.samples = std::min<std::size_t>(opt.samples, 100);
    opt.epochs = std::min<std::size_t>(opt.epochs, 3);
  }
  return opt;
}

/// Pre-extracted unique scan samples (serving is measured, not the
/// frontend).
std::vector<acfg::Acfg> make_unique_samples(std::size_t count,
                                            std::uint64_t seed,
                                            util::ThreadPool& pool) {
  const auto specs = data::yancfg_family_specs();
  const std::size_t families[] = {1, 3, 9};
  std::vector<data::ProgramGenerator> generators;
  for (std::size_t f : families) {
    generators.emplace_back(specs[f], util::Rng(seed ^ (0xCAFE + f)));
  }
  std::vector<std::string> listings;
  listings.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    listings.push_back(generators[i % generators.size()].generate_listing());
  }
  return acfg::extract_batch(listings, pool);
}

/// A request stream of `total` scans over a pool of unique samples sized so
/// that `duplicate_rate` of the requests re-submit already-seen content.
/// Requests cycle through the unique pool, so duplicates are spread across
/// the stream the way re-uploads are, not clustered at the end.
std::vector<const acfg::Acfg*> make_request_stream(
    const std::vector<acfg::Acfg>& unique, std::size_t total,
    double duplicate_rate) {
  const auto wanted = static_cast<std::size_t>(
      static_cast<double>(total) * (1.0 - duplicate_rate) + 0.5);
  const std::size_t pool = std::clamp<std::size_t>(wanted, 1, unique.size());
  std::vector<const acfg::Acfg*> stream;
  stream.reserve(total);
  for (std::size_t i = 0; i < total; ++i) {
    stream.push_back(&unique[i % pool]);
  }
  return stream;
}

struct CachePoint {
  double duplicate_rate = 0.0;
  bool cache_on = false;
  double seconds = 0.0;
  double throughput = 0.0;
  serve::ServerStats stats;
};

CachePoint run_point(core::MagicClassifier& clf,
                     const std::vector<const acfg::Acfg*>& stream,
                     double duplicate_rate, bool cache_on) {
  serve::ServeConfig config;
  config.workers = 2;
  config.queue_capacity = stream.size() + 1;
  config.max_batch = 8;
  config.batch_window = std::chrono::microseconds(2000);
  config.cache_bytes = cache_on ? (16ull << 20) : 0;
  serve::InferenceServer server(clf, config);

  // Submit in windows of in-flight requests rather than all at once: real
  // re-uploads arrive after the original was scanned, and blasting the
  // whole stream up front would let duplicates race their own originals
  // through the miss path, understating every hit rate.
  constexpr std::size_t kWindow = 32;
  std::vector<serve::PendingVerdict> handles;
  handles.reserve(stream.size());
  std::size_t ok = 0;
  util::Timer timer;
  for (const acfg::Acfg* sample : stream) {
    handles.push_back(server.submit(*sample));
    if (handles.size() == kWindow) {
      for (auto& handle : handles) {
        if (handle.get().ok()) ++ok;
      }
      handles.clear();
    }
  }
  for (auto& handle : handles) {
    if (handle.get().ok()) ++ok;
  }
  CachePoint point;
  point.duplicate_rate = duplicate_rate;
  point.cache_on = cache_on;
  point.seconds = timer.seconds();
  point.throughput =
      point.seconds > 0.0 ? static_cast<double>(ok) / point.seconds : 0.0;
  point.stats = server.stats();
  if (ok != stream.size()) {
    std::cerr << "warning: only " << ok << "/" << stream.size()
              << " requests resolved ok (dup=" << duplicate_rate
              << ", cache=" << (cache_on ? "on" : "off") << ")\n";
  }
  return point;
}

std::string json_point(const CachePoint& p) {
  std::ostringstream os;
  os << "{\"duplicate_rate\":" << p.duplicate_rate
     << ",\"cache\":" << (p.cache_on ? "true" : "false")
     << ",\"seconds\":" << p.seconds
     << ",\"throughput_rps\":" << p.throughput
     << ",\"hits\":" << p.stats.cache.hits
     << ",\"misses\":" << p.stats.cache.misses
     << ",\"hit_rate\":" << p.stats.cache.hit_rate()
     << ",\"latency_p50_ms\":" << p.stats.latency_p50_ms
     << ",\"latency_p99_ms\":" << p.stats.latency_p99_ms << "}";
  return os.str();
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse(argc, argv);
  if (!opt.metrics_out.empty()) magic::obs::set_enabled(true);
  std::cout << "bench_cache: verdict cache + packed corpus (" << opt.samples
            << " requests per point)\n";

  util::ThreadPool pool;
  util::Timer setup;
  data::Dataset corpus = data::yancfg_like_corpus(opt.scale, opt.seed, pool);
  core::DgcnnConfig config;
  config.pooling = core::PoolingType::AdaptivePooling;
  config.pooling_ratio = 0.2;
  config.graph_conv_channels = {32, 32};
  config.dropout_rate = 0.5;
  core::TrainOptions train;
  train.epochs = opt.epochs;
  train.batch_size = 10;
  train.learning_rate = 3e-3;
  train.balance_families = true;
  train.balance_strength = 0.5;
  core::MagicClassifier clf(config, train, opt.seed);
  clf.fit(corpus, 0.15);
  const std::vector<acfg::Acfg> unique =
      make_unique_samples(opt.samples, opt.seed, pool);
  std::cout << "trained on " << corpus.size() << " samples, extracted "
            << unique.size() << " unique scan requests in "
            << util::format_fixed(setup.seconds(), 1) << "s\n\n";

  // ---- Part 1: cache-on vs cache-off across duplicate rates --------------
  const double rates[] = {0.0, 0.5, 0.9};
  std::vector<CachePoint> points;
  util::Table table({"Dup rate", "Cache", "Throughput (req/s)", "Hit rate",
                     "p50 (ms)", "p99 (ms)"});
  for (const double rate : rates) {
    const std::vector<const acfg::Acfg*> stream =
        make_request_stream(unique, opt.samples, rate);
    for (const bool cache_on : {false, true}) {
      const CachePoint p = run_point(clf, stream, rate, cache_on);
      table.add_row({util::format_fixed(rate * 100, 0) + "%",
                     cache_on ? "on" : "off",
                     util::format_fixed(p.throughput, 1),
                     util::format_fixed(p.stats.cache.hit_rate(), 2),
                     util::format_fixed(p.stats.latency_p50_ms, 2),
                     util::format_fixed(p.stats.latency_p99_ms, 2)});
      points.push_back(p);
    }
  }
  table.print(std::cout);

  auto find_point = [&](double rate, bool cache_on) -> const CachePoint& {
    for (const CachePoint& p : points) {
      if (p.duplicate_rate == rate && p.cache_on == cache_on) return p;
    }
    std::cerr << "missing sweep point\n";
    std::exit(1);
  };
  const CachePoint& hot_off = find_point(0.9, false);
  const CachePoint& hot_on = find_point(0.9, true);
  const double speedup_90 =
      hot_off.throughput > 0.0 ? hot_on.throughput / hot_off.throughput : 0.0;
  std::cout << "\nspeedup at 90% duplicates (cache on vs off): "
            << util::format_fixed(speedup_90, 2) << "x\n";

  // ---- Part 2: packed mmap corpus vs text parse --------------------------
  const std::string text_path = "bench_cache_corpus.txt";
  const std::string packed_path = "bench_cache_corpus.mgc";
  acfg::save_corpus(text_path, corpus.samples);
  data::pack_corpus(corpus, packed_path);

  util::Timer text_timer;
  const std::vector<acfg::Acfg> text_loaded = acfg::load_corpus(text_path);
  const double text_s = text_timer.seconds();

  util::Timer open_timer;
  data::PackedCorpus packed(packed_path);
  const double open_s = open_timer.seconds();

  util::Timer mat_timer;
  const data::Dataset packed_loaded = packed.to_dataset();
  const double packed_s = open_s + mat_timer.seconds();

  bool identical = text_loaded.size() == corpus.size() &&
                   packed_loaded.size() == corpus.size();
  for (std::size_t i = 0; identical && i < corpus.size(); ++i) {
    const acfg::Acfg& a = corpus.samples[i];
    const acfg::Acfg& b = packed_loaded.samples[i];
    identical = a.label == b.label && a.id == b.id &&
                a.out_edges == b.out_edges &&
                a.attributes.storage() == b.attributes.storage();
  }

  std::cout << "\ncorpus load (" << corpus.size() << " samples):\n"
            << "  text parse:          " << util::format_fixed(text_s * 1e3, 1)
            << " ms\n"
            << "  packed open (mmap):  " << util::format_fixed(open_s * 1e3, 1)
            << " ms\n"
            << "  packed materialize:  " << util::format_fixed(packed_s * 1e3, 1)
            << " ms  (" << util::format_fixed(
                   packed_s > 0.0 ? text_s / packed_s : 0.0, 1)
            << "x faster than text)\n"
            << "  round-trip bit-exact: " << (identical ? "yes" : "NO") << "\n";
  std::remove(text_path.c_str());
  std::remove(packed_path.c_str());

  std::ofstream out(opt.out);
  out << "{\"bench\":\"cache\",\"samples\":" << opt.samples
      << ",\"seed\":" << opt.seed
      << ",\"speedup_90dup\":" << speedup_90
      << ",\"sweep\":[";
  for (std::size_t i = 0; i < points.size(); ++i) {
    if (i != 0) out << ",";
    out << json_point(points[i]);
  }
  out << "],\"corpus\":{\"samples\":" << corpus.size()
      << ",\"text_parse_s\":" << text_s
      << ",\"packed_open_s\":" << open_s
      << ",\"packed_load_s\":" << packed_s
      << ",\"speedup_packed\":" << (packed_s > 0.0 ? text_s / packed_s : 0.0)
      << ",\"bit_exact\":" << (identical ? "true" : "false") << "}}\n";
  std::cout << "wrote " << opt.out << "\n";

  // ---- Gates (CI runs this as a correctness check, not just a timer) -----
  bool failed = false;
  if (speedup_90 <= 1.0) {
    std::cerr << "FAIL: cache-on did not beat cache-off at 90% duplicates ("
              << util::format_fixed(speedup_90, 2) << "x)\n";
    failed = true;
  }
  if (hot_on.stats.cache.hits == 0) {
    std::cerr << "FAIL: 90%-duplicate cache-on point recorded zero hits\n";
    failed = true;
  }
  if (packed_s >= text_s) {
    std::cerr << "FAIL: packed corpus load (" << packed_s
              << "s) not faster than text parse (" << text_s << "s)\n";
    failed = true;
  }
  if (!identical) {
    std::cerr << "FAIL: packed corpus round-trip is not bit-exact\n";
    failed = true;
  }

  if (!opt.metrics_out.empty()) {
    std::ofstream metrics(opt.metrics_out);
    metrics << magic::obs::MetricsRegistry::global().snapshot_json() << "\n";
    std::cout << "wrote " << opt.metrics_out << "\n";
  }
  return failed ? 1 : 0;
}
