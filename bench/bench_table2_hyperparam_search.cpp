// Table II: hyper-parameter tuning.
//
// The paper exhaustively cross-validates 208 grid settings (64 adaptive-
// pooling, 96 sort+Conv1D, 48 sort+WeightedVertices) and reports the best
// model per dataset. Running all 208 at paper scale needs GPU-days; this
// bench (a) verifies the full grid enumeration matches the paper's counts
// and (b) cross-validates the reduced representative grid — which includes
// both paper-best configs — on a scaled MSKCFG corpus and ranks them by the
// paper's criterion (minimum epoch-averaged validation loss).
//
// Pass --full-grid to enumerate and run all 208 points (slow).

#include <cstring>

#include "bench_util.hpp"

#include "data/corpus.hpp"
#include "magic/hyperparam.hpp"
#include "util/string_util.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace magic;
  bool full_grid = false;
  std::vector<char*> filtered;
  filtered.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--full-grid") == 0) full_grid = true;
    else filtered.push_back(argv[i]);
  }
  bench::BenchOptions defaults;
  defaults.scale = 0.006;
  defaults.epochs = 8;
  defaults.folds = 3;
  const auto opt = bench::parse_options(static_cast<int>(filtered.size()),
                                        filtered.data(), defaults);
  bench::banner("Table II: hyper-parameter search",
                "Table II of Yan et al., DSN 2019", opt);

  // (a) The grid itself reproduces the paper's enumeration.
  const auto grid208 = core::full_table2_grid();
  std::size_t adaptive = 0, sort_conv = 0, sort_wv = 0;
  for (const auto& p : grid208) {
    if (p.config.pooling == core::PoolingType::AdaptivePooling) ++adaptive;
    else if (p.config.remaining == core::RemainingLayer::Conv1D) ++sort_conv;
    else ++sort_wv;
  }
  std::cout << "full Table II grid: " << grid208.size() << " settings ("
            << adaptive << " adaptive pooling, " << sort_conv
            << " sort pooling + Conv1D, " << sort_wv
            << " sort pooling + WeightedVertices)\n"
            << "paper: 208 settings (64 / 96 / 48)\n\n";

  // (b) Cross-validate a grid on a scaled corpus.
  util::ThreadPool pool(opt.threads);
  data::Dataset d = data::mskcfg_like_corpus(opt.scale, opt.seed, pool);
  std::cout << "searching on a " << d.size() << "-sample MSKCFG-scale corpus\n\n";

  const auto grid = full_grid ? grid208 : core::reduced_grid();
  core::CvOptions cv;
  cv.folds = opt.folds;
  cv.seed = opt.seed;
  cv.train.epochs = opt.epochs;
  cv.train.learning_rate = 1e-3;

  util::Timer timer;
  core::SearchResult result = core::grid_search(grid, d, cv, pool);
  std::cout << "searched " << grid.size() << " settings in "
            << util::format_fixed(timer.seconds(), 1) << "s\n\n";

  util::Table table({"Rank", "Setting", "CV score (min mean val loss)", "Accuracy"});
  for (std::size_t r = 0; r < result.entries.size(); ++r) {
    const auto& e = result.entries[r];
    table.add_row({std::to_string(r + 1), e.point.describe(),
                   util::format_fixed(e.score, 4),
                   util::format_fixed(e.accuracy, 4)});
  }
  table.print(std::cout);
  std::cout << "\nbest: " << result.best().point.describe() << "\n"
            << "paper best for MSKCFG: AdaptivePooling ratio=0.64 gc=(128,64,32,32) "
               "c2d=16 do=0.1 bs=10 l2=0.0001\n";
  return 0;
}
