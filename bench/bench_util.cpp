#include "bench_util.hpp"

#include <cstdlib>

#include "util/logging.hpp"
#include "util/string_util.hpp"

namespace magic::bench {

BenchOptions parse_options(int argc, char** argv, BenchOptions defaults) {
  BenchOptions opt = defaults;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "missing value for " << flag << "\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (flag == "--scale") opt.scale = std::stod(next());
    else if (flag == "--epochs") opt.epochs = std::stoul(next());
    else if (flag == "--folds") opt.folds = std::stoul(next());
    else if (flag == "--seed") opt.seed = std::stoull(next());
    else if (flag == "--threads") opt.threads = std::stoul(next());
    else if (flag == "--balance") {
      opt.balance_strength = std::stod(next());
      opt.balance = opt.balance_strength > 0.0;
    }
    else if (flag == "--help" || flag == "-h") {
      std::cout << "flags: --scale S --epochs N --folds K --seed X --threads T "
                   "--balance STRENGTH(0..1)\n";
      std::exit(0);
    } else if (util::starts_with(flag, "--benchmark")) {
      // google-benchmark flags pass through (bench_overhead).
    } else {
      std::cerr << "unknown flag " << flag << "\n";
      std::exit(2);
    }
  }
  return opt;
}

void banner(const std::string& title, const std::string& paper_ref,
            const BenchOptions& options) {
  std::cout << "=== " << title << " ===\n"
            << "reproduces: " << paper_ref << "\n"
            << "scale=" << options.scale << " epochs=" << options.epochs
            << " folds=" << options.folds << " seed=" << options.seed << "\n\n";
  util::set_log_level(util::LogLevel::Warn);
}

core::DgcnnConfig best_mskcfg_config() {
  // Table II "Best Model for MSKCFG": Adaptive Pooling, ratio 0.64,
  // graph conv (128, 64, 32, 32), 16 2-D conv channels, dropout 0.1.
  core::DgcnnConfig cfg;
  cfg.pooling = core::PoolingType::AdaptivePooling;
  cfg.pooling_ratio = 0.64;
  cfg.graph_conv_channels = {128, 64, 32, 32};
  cfg.conv2d_channels = 16;
  cfg.dropout_rate = 0.1;
  return cfg;
}

core::DgcnnConfig best_yancfg_config() {
  // Table II "Best Model for YANCFG": Adaptive Pooling, ratio 0.2,
  // graph conv (32, 32, 32, 32), 16 2-D conv channels, dropout 0.5.
  core::DgcnnConfig cfg;
  cfg.pooling = core::PoolingType::AdaptivePooling;
  cfg.pooling_ratio = 0.2;
  cfg.graph_conv_channels = {32, 32, 32, 32};
  cfg.conv2d_channels = 16;
  cfg.dropout_rate = 0.5;
  return cfg;
}

core::CvResult run_cv(const core::DgcnnConfig& config, const data::Dataset& dataset,
                      const BenchOptions& options, util::ThreadPool& pool) {
  core::CvOptions cv;
  cv.folds = options.folds;
  cv.seed = options.seed;
  cv.train.epochs = options.epochs;
  cv.train.batch_size = 10;
  // Higher than typical GPU-scale runs: the scaled corpora see far fewer
  // gradient steps per epoch, so training needs a hotter start (the
  // plateau schedule still decays it).
  cv.train.learning_rate = 3e-3;
  cv.train.weight_decay = 1e-4;
  // The paper's 10x-decay-after-2-increases rule assumes validation losses
  // computed over thousands of samples; our scaled validation folds are two
  // orders of magnitude smaller and noisy, so an unmodified rule decays far
  // too early. Soften to 2x decay after 3 consecutive increases.
  cv.train.lr_patience = 3;
  cv.train.lr_factor = 0.5;
  // Scaled corpora leave minority families with only a handful of samples;
  // family-balanced oversampling keeps them represented in every epoch
  // (see BenchOptions::balance for when it is disabled).
  cv.train.balance_families = options.balance;
  cv.train.balance_strength = options.balance_strength;
  core::DgcnnConfig cfg = config;
  cfg.num_classes = dataset.num_families();
  return core::cross_validate(cfg, dataset, cv, pool);
}

void print_family_scores(const data::Dataset& dataset, const core::CvResult& cv,
                         const std::vector<double>& paper_f1) {
  const bool with_paper = !paper_f1.empty();
  std::vector<std::string> header = {"Family", "Precision", "Recall", "F1"};
  if (with_paper) {
    header.push_back("Paper F1");
  }
  util::Table table(header);
  for (std::size_t f = 0; f < dataset.num_families(); ++f) {
    std::vector<std::string> row = {
        dataset.family_names[f],
        util::format_fixed(cv.confusion.precision(f), 6),
        util::format_fixed(cv.confusion.recall(f), 6),
        util::format_fixed(cv.confusion.f1(f), 6),
    };
    if (with_paper) {
      row.push_back(util::format_fixed(paper_f1.at(f), 6));
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout);
  std::cout << "\noverall accuracy " << util::format_fixed(cv.accuracy, 4)
            << ", mean log loss " << util::format_fixed(cv.mean_log_loss, 4)
            << ", macro F1 " << util::format_fixed(cv.confusion.macro_f1(), 4)
            << "\n";
}

}  // namespace magic::bench
