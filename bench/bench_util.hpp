#pragma once
// Shared plumbing for the per-table/figure benchmark harnesses.
//
// Every bench accepts the same flags:
//   --scale S    corpus scale relative to the paper's dataset (default per bench)
//   --epochs N   training epochs per fold
//   --folds K    cross-validation folds
//   --seed X     master seed
//   --threads T  worker threads (default: hardware)
//
// Defaults are sized for a single CPU core; EXPERIMENTS.md records both the
// paper-scale and the default-scale regimes.

#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "data/dataset.hpp"
#include "magic/cross_validation.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace magic::bench {

struct BenchOptions {
  double scale = 0.01;
  std::size_t epochs = 8;
  std::size_t folds = 5;
  std::uint64_t seed = 2019;  // the paper's year
  std::size_t threads = 0;    // 0 = hardware
  /// Family-balanced oversampling during training. Strength 1 = uniform
  /// (right for MSKCFG, whose minority families are learnable but rare),
  /// 0.5 = sqrt compromise (right for YANCFG, whose generic families would
  /// otherwise flood the gradient stream), 0 disables.
  bool balance = true;
  double balance_strength = 1.0;
};

/// Parses the common flags; unknown flags abort with a usage message.
BenchOptions parse_options(int argc, char** argv, BenchOptions defaults = {});

/// Prints the standard bench banner.
void banner(const std::string& title, const std::string& paper_ref,
            const BenchOptions& options);

/// The best-model configs of Table II (column "Best Model for ...").
core::DgcnnConfig best_mskcfg_config();
core::DgcnnConfig best_yancfg_config();

/// Runs K-fold CV of `config` and returns the result (single call shared by
/// several benches).
core::CvResult run_cv(const core::DgcnnConfig& config, const data::Dataset& dataset,
                      const BenchOptions& options, util::ThreadPool& pool);

/// Renders a per-family P/R/F1 table next to the paper's reference values.
/// `paper_f1` may be empty (no reference column) or indexed by family.
void print_family_scores(const data::Dataset& dataset, const core::CvResult& cv,
                         const std::vector<double>& paper_f1);

}  // namespace magic::bench
