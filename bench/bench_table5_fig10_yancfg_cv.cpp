// Table V / Figure 10: per-family precision, recall and F1 of MAGIC on the
// YANCFG dataset under stratified 5-fold cross-validation, using the best
// YANCFG model of Table II (AdaptivePooling, ratio 0.2, graph conv
// (32, 32, 32, 32), 16 Conv2D channels, dropout 0.5, batch 40, L2 5e-4).
//
// Expected shape (paper): nine of 13 families above 0.9 F1; the small
// generic families (Ldpinch 0.59, Sdbot 0.58, Rbot 0.70, Lmir 0.78) are
// much harder — our generator reproduces that by blending them toward a
// shared generic profile.

#include "bench_util.hpp"

#include "data/corpus.hpp"
#include "util/string_util.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace magic;
  bench::BenchOptions defaults;
  defaults.scale = 0.02;
  defaults.epochs = 24;
  defaults.balance_strength = 0.5;
  const auto opt = bench::parse_options(argc, argv, defaults);
  bench::banner("Table V / Fig. 10: MAGIC cross-validation scores on YANCFG",
                "Table V and Fig. 10 of Yan et al., DSN 2019", opt);

  util::ThreadPool pool(opt.threads);
  util::Timer timer;
  data::Dataset d = data::yancfg_like_corpus(opt.scale, opt.seed, pool);
  std::cout << "corpus: " << d.size() << " samples, " << d.num_families()
            << " families (" << util::format_fixed(timer.seconds(), 1) << "s to build)\n\n";

  timer.reset();
  core::CvResult cv = bench::run_cv(bench::best_yancfg_config(), d, opt, pool);
  std::cout << "cross-validation took " << util::format_fixed(timer.seconds(), 1)
            << "s\n\n";

  // Paper Table V F1 per family, in spec order.
  const std::vector<double> paper_f1 = {0.904762, 0.958525, 0.915888, 0.940454,
                                        1.000000, 0.590164, 0.779220, 0.697095,
                                        0.575342, 0.995708, 0.986351, 0.939314,
                                        0.979592};
  bench::print_family_scores(d, cv, paper_f1);
  std::cout << "shape check: the Ldpinch/Lmir/Rbot/Sdbot rows should sit well\n"
               "below the populous families, as in the paper.\n";
  return 0;
}
