// bench_serve_throughput: serving-layer scaling sweep.
//
// Trains a small YANCFG-style model once, pre-extracts a fixed ACFG sample
// set, then measures InferenceServer throughput across
//   workers x {micro-batching off, micro-batching on}
// and writes the sweep (plus latency percentiles) to BENCH_serve.json.
//
// The headline number is speedup_8w_batched: 8-worker batched throughput
// over 1-worker unbatched. It only manifests on multi-core hardware, so the
// JSON records hardware_concurrency alongside the measurements (CI runs
// this on a multi-core runner; a 1-core container will honestly report ~1x).
//
// Flags:
//   --samples N    scan requests per sweep point (default 400)
//   --scale S      training-corpus scale (default 0.002)
//   --epochs N     training epochs (default 6)
//   --seed X       master seed (default 2019)
//   --out FILE     JSON output path (default BENCH_serve.json)
//   --quick        tiny sweep for smoke runs (fewer samples, epochs)
//   --metrics-out FILE  enable magic::obs and dump the process-wide metrics
//                  snapshot (serve.* counters + latency histogram,
//                  extraction spans, trainer phases) as JSON

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "acfg/extractor.hpp"
#include "data/corpus.hpp"
#include "data/program_generator.hpp"
#include "magic/classifier.hpp"
#include "obs/metrics.hpp"
#include "serve/server.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace {

using namespace magic;

struct Options {
  std::size_t samples = 400;
  double scale = 0.002;
  std::size_t epochs = 6;
  std::uint64_t seed = 2019;
  std::string out = "BENCH_serve.json";
  std::string metrics_out;
  bool quick = false;
};

struct SweepPoint {
  std::size_t workers = 0;
  bool batched = false;
  double seconds = 0.0;
  double throughput = 0.0;  // requests / second
  serve::ServerStats stats;
};

Options parse(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* flag) -> std::string {
      if (i + 1 >= argc) {
        std::cerr << flag << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--samples") opt.samples = std::stoul(next("--samples"));
    else if (arg == "--scale") opt.scale = std::stod(next("--scale"));
    else if (arg == "--epochs") opt.epochs = std::stoul(next("--epochs"));
    else if (arg == "--seed") opt.seed = std::stoull(next("--seed"));
    else if (arg == "--out") opt.out = next("--out");
    else if (arg == "--metrics-out") opt.metrics_out = next("--metrics-out");
    else if (arg == "--quick") opt.quick = true;
    else {
      std::cerr << "unknown flag " << arg << "\n"
                << "usage: bench_serve_throughput [--samples N] [--scale S] "
                   "[--epochs N] [--seed X] [--out FILE] [--quick] "
                   "[--metrics-out FILE]\n";
      std::exit(2);
    }
  }
  if (opt.quick) {
    opt.samples = std::min<std::size_t>(opt.samples, 80);
    opt.epochs = std::min<std::size_t>(opt.epochs, 3);
  }
  return opt;
}

/// Fresh polymorphic scan workload: listings from a few YANCFG family
/// specs, extracted to ACFGs up front so the sweep measures serving, not
/// the frontend.
std::vector<acfg::Acfg> make_workload(std::size_t count, std::uint64_t seed,
                                      util::ThreadPool& pool) {
  const auto specs = data::yancfg_family_specs();
  const std::size_t families[] = {1, 3, 9};  // Benign, Hupigon, Swizzor
  std::vector<data::ProgramGenerator> generators;
  generators.reserve(std::size(families));
  for (std::size_t f : families) {
    generators.emplace_back(specs[f], util::Rng(seed ^ (0xBEEF + f)));
  }
  std::vector<std::string> listings;
  listings.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    listings.push_back(generators[i % generators.size()].generate_listing());
  }
  return acfg::extract_batch(listings, pool);
}

SweepPoint run_point(core::MagicClassifier& clf,
                     const std::vector<acfg::Acfg>& workload,
                     std::size_t workers, bool batched) {
  serve::ServeConfig config;
  config.workers = workers;
  config.queue_capacity = workload.size() + 1;  // sweep measures throughput, not sheds
  config.max_batch = batched ? 8 : 1;
  config.batch_window = std::chrono::microseconds(batched ? 2000 : 0);
  serve::InferenceServer server(clf, config);

  std::vector<serve::PendingVerdict> handles;
  handles.reserve(workload.size());
  util::Timer timer;
  for (const acfg::Acfg& sample : workload) {
    handles.push_back(server.submit(sample));
  }
  std::size_t ok = 0;
  for (auto& handle : handles) {
    if (handle.get().ok()) ++ok;
  }
  SweepPoint point;
  point.workers = workers;
  point.batched = batched;
  point.seconds = timer.seconds();
  point.throughput = point.seconds > 0.0
                         ? static_cast<double>(ok) / point.seconds
                         : 0.0;
  point.stats = server.stats();
  if (ok != workload.size()) {
    std::cerr << "warning: only " << ok << "/" << workload.size()
              << " requests resolved ok at workers=" << workers << "\n";
  }
  return point;
}

std::string json_point(const SweepPoint& p) {
  std::ostringstream os;
  os << "{\"workers\":" << p.workers
     << ",\"batched\":" << (p.batched ? "true" : "false")
     << ",\"seconds\":" << p.seconds
     << ",\"throughput_rps\":" << p.throughput
     << ",\"mean_batch_size\":" << p.stats.mean_batch_size()
     << ",\"latency_p50_ms\":" << p.stats.latency_p50_ms
     << ",\"latency_p95_ms\":" << p.stats.latency_p95_ms
     << ",\"latency_p99_ms\":" << p.stats.latency_p99_ms << "}";
  return os.str();
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse(argc, argv);
  if (!opt.metrics_out.empty()) magic::obs::set_enabled(true);
  const unsigned hardware = std::thread::hardware_concurrency();
  std::cout << "bench_serve_throughput: serving sweep ("
            << opt.samples << " samples, hardware_concurrency=" << hardware
            << ")\n";

  util::ThreadPool pool;
  util::Timer setup;
  data::Dataset corpus = data::yancfg_like_corpus(opt.scale, opt.seed, pool);
  core::DgcnnConfig config;
  config.pooling = core::PoolingType::AdaptivePooling;
  config.pooling_ratio = 0.2;
  config.graph_conv_channels = {32, 32};
  config.dropout_rate = 0.5;
  core::TrainOptions train;
  train.epochs = opt.epochs;
  train.batch_size = 10;
  train.learning_rate = 3e-3;
  train.balance_families = true;
  train.balance_strength = 0.5;
  core::MagicClassifier clf(config, train, opt.seed);
  clf.fit(corpus, 0.15);
  const std::vector<acfg::Acfg> workload =
      make_workload(opt.samples, opt.seed, pool);
  std::cout << "trained on " << corpus.size() << " samples and extracted "
            << workload.size() << " scan requests in "
            << util::format_fixed(setup.seconds(), 1) << "s\n\n";

  const std::size_t worker_counts[] = {1, 2, 4, 8};
  std::vector<SweepPoint> points;
  util::Table table({"Workers", "Batching", "Throughput (req/s)",
                     "Mean batch", "p50 (ms)", "p95 (ms)", "p99 (ms)"});
  for (std::size_t workers : worker_counts) {
    for (bool batched : {false, true}) {
      const SweepPoint p = run_point(clf, workload, workers, batched);
      table.add_row({std::to_string(p.workers), batched ? "on" : "off",
                     util::format_fixed(p.throughput, 1),
                     util::format_fixed(p.stats.mean_batch_size(), 2),
                     util::format_fixed(p.stats.latency_p50_ms, 2),
                     util::format_fixed(p.stats.latency_p95_ms, 2),
                     util::format_fixed(p.stats.latency_p99_ms, 2)});
      points.push_back(p);
    }
  }
  table.print(std::cout);

  double base = 0.0, best8 = 0.0;
  for (const SweepPoint& p : points) {
    if (p.workers == 1 && !p.batched) base = p.throughput;
    if (p.workers == 8 && p.batched) best8 = p.throughput;
  }
  const double speedup = base > 0.0 ? best8 / base : 0.0;
  std::cout << "\nspeedup (8 workers, batched vs 1 worker, unbatched): "
            << util::format_fixed(speedup, 2) << "x\n";

  std::ofstream out(opt.out);
  out << "{\"bench\":\"serve_throughput\",\"samples\":" << opt.samples
      << ",\"hardware_concurrency\":" << hardware
      << ",\"seed\":" << opt.seed
      << ",\"speedup_8w_batched\":" << speedup << ",\"sweep\":[";
  for (std::size_t i = 0; i < points.size(); ++i) {
    if (i != 0) out << ",";
    out << json_point(points[i]);
  }
  out << "]}\n";
  std::cout << "wrote " << opt.out << "\n";

  if (!opt.metrics_out.empty()) {
    std::ofstream metrics(opt.metrics_out);
    metrics << magic::obs::MetricsRegistry::global().snapshot_json() << "\n";
    std::cout << "wrote " << opt.metrics_out << "\n";
  }
  return 0;
}
