// bench_serve_throughput: serving-layer scaling sweep.
//
// Trains a small YANCFG-style model once, pre-extracts a fixed ACFG sample
// set, then measures InferenceServer throughput across
//   workers x {micro-batching off, micro-batching on}
// and writes the sweep (plus latency percentiles) to BENCH_serve.json.
//
// The headline number is speedup_8w_batched: 8-worker batched throughput
// over 1-worker unbatched. It only manifests on multi-core hardware, so the
// JSON records hardware_concurrency alongside the measurements (CI runs
// this on a multi-core runner; a 1-core container will honestly report ~1x).
//
// A second section measures connection scaling of the epoll socket daemon:
// 64 / 256 / 1024 concurrent Unix-socket clients, one scan request each,
// through a single event loop (RLIMIT_NOFILE is raised to the hard limit
// first). The section goes into BENCH_serve.json as "connections" and the
// process exits nonzero if any client fails to connect or any verdict is
// not ok — CI doubles as the >=1024-concurrent-connections gate.
//
// A third section compares the two classify() engines on one replica —
// packed block-diagonal batching vs the per-item loop — both directly
// (threads=1, same replica count) and at the serving layer, and writes the
// comparison to BENCH_batch.json. The process exits nonzero if the engines
// disagree (>1e-9 relative) or the packed serve point never packed a batch,
// so CI doubles as an equivalence gate.
//
// Flags:
//   --samples N    scan requests per sweep point (default 400)
//   --scale S      training-corpus scale (default 0.002)
//   --epochs N     training epochs (default 6)
//   --seed X       master seed (default 2019)
//   --out FILE     JSON output path (default BENCH_serve.json)
//   --batch-out FILE  packed-vs-per-sample JSON path (default BENCH_batch.json)
//   --quick        tiny sweep for smoke runs (fewer samples, epochs)
//   --metrics-out FILE  enable magic::obs and dump the process-wide metrics
//                  snapshot (serve.* counters + latency histogram,
//                  extraction spans, trainer phases) as JSON

#include <sys/resource.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <memory>
#include <span>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "acfg/extractor.hpp"
#include "data/corpus.hpp"
#include "data/program_generator.hpp"
#include "magic/classifier.hpp"
#include "obs/metrics.hpp"
#include "serve/daemon.hpp"
#include "serve/server.hpp"
#include "serve/wire.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace {

using namespace magic;

struct Options {
  std::size_t samples = 400;
  double scale = 0.002;
  std::size_t epochs = 6;
  std::uint64_t seed = 2019;
  std::string out = "BENCH_serve.json";
  std::string batch_out = "BENCH_batch.json";
  std::string metrics_out;
  bool quick = false;
};

struct SweepPoint {
  std::size_t workers = 0;
  bool batched = false;
  double seconds = 0.0;
  double throughput = 0.0;  // requests / second
  serve::ServerStats stats;
};

Options parse(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* flag) -> std::string {
      if (i + 1 >= argc) {
        std::cerr << flag << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--samples") opt.samples = std::stoul(next("--samples"));
    else if (arg == "--scale") opt.scale = std::stod(next("--scale"));
    else if (arg == "--epochs") opt.epochs = std::stoul(next("--epochs"));
    else if (arg == "--seed") opt.seed = std::stoull(next("--seed"));
    else if (arg == "--out") opt.out = next("--out");
    else if (arg == "--batch-out") opt.batch_out = next("--batch-out");
    else if (arg == "--metrics-out") opt.metrics_out = next("--metrics-out");
    else if (arg == "--quick") opt.quick = true;
    else {
      std::cerr << "unknown flag " << arg << "\n"
                << "usage: bench_serve_throughput [--samples N] [--scale S] "
                   "[--epochs N] [--seed X] [--out FILE] [--batch-out FILE] "
                   "[--quick] [--metrics-out FILE]\n";
      std::exit(2);
    }
  }
  if (opt.quick) {
    opt.samples = std::min<std::size_t>(opt.samples, 80);
    opt.epochs = std::min<std::size_t>(opt.epochs, 3);
  }
  return opt;
}

/// Fresh polymorphic scan listings from a few YANCFG family specs.
std::vector<std::string> make_listings(std::size_t count, std::uint64_t seed) {
  const auto specs = data::yancfg_family_specs();
  const std::size_t families[] = {1, 3, 9};  // Benign, Hupigon, Swizzor
  std::vector<data::ProgramGenerator> generators;
  generators.reserve(std::size(families));
  for (std::size_t f : families) {
    generators.emplace_back(specs[f], util::Rng(seed ^ (0xBEEF + f)));
  }
  std::vector<std::string> listings;
  listings.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    listings.push_back(generators[i % generators.size()].generate_listing());
  }
  return listings;
}

/// Scan workload extracted to ACFGs up front so the sweep measures serving,
/// not the frontend.
std::vector<acfg::Acfg> make_workload(std::size_t count, std::uint64_t seed,
                                      util::ThreadPool& pool) {
  return acfg::extract_batch(make_listings(count, seed), pool);
}

SweepPoint run_point(core::MagicClassifier& clf,
                     const std::vector<acfg::Acfg>& workload,
                     std::size_t workers, bool batched,
                     core::PredictEngine engine = core::PredictEngine::Packed) {
  serve::ServeConfig config;
  config.workers = workers;
  config.queue_capacity = workload.size() + 1;  // sweep measures throughput, not sheds
  config.max_batch = batched ? 8 : 1;
  config.batch_window = std::chrono::microseconds(batched ? 2000 : 0);
  config.engine = engine;
  serve::InferenceServer server(clf, config);

  std::vector<serve::PendingVerdict> handles;
  handles.reserve(workload.size());
  util::Timer timer;
  for (const acfg::Acfg& sample : workload) {
    handles.push_back(server.submit(sample));
  }
  std::size_t ok = 0;
  for (auto& handle : handles) {
    if (handle.get().ok()) ++ok;
  }
  SweepPoint point;
  point.workers = workers;
  point.batched = batched;
  point.seconds = timer.seconds();
  point.throughput = point.seconds > 0.0
                         ? static_cast<double>(ok) / point.seconds
                         : 0.0;
  point.stats = server.stats();
  if (ok != workload.size()) {
    std::cerr << "warning: only " << ok << "/" << workload.size()
              << " requests resolved ok at workers=" << workers << "\n";
  }
  return point;
}

std::string json_point(const SweepPoint& p) {
  std::ostringstream os;
  os << "{\"workers\":" << p.workers
     << ",\"batched\":" << (p.batched ? "true" : "false")
     << ",\"seconds\":" << p.seconds
     << ",\"throughput_rps\":" << p.throughput
     << ",\"mean_batch_size\":" << p.stats.mean_batch_size()
     << ",\"packed_batches\":" << p.stats.packed_batches
     << ",\"latency_p50_ms\":" << p.stats.latency_p50_ms
     << ",\"latency_p95_ms\":" << p.stats.latency_p95_ms
     << ",\"latency_p99_ms\":" << p.stats.latency_p99_ms << "}";
  return os.str();
}

// ---- Connection scaling over the epoll socket daemon ----------------------

struct ConnectionPoint {
  std::size_t connections = 0;  ///< target
  std::size_t connected = 0;    ///< actually established
  std::size_t ok = 0;           ///< ok verdicts received
  double connect_seconds = 0.0;
  double serve_seconds = 0.0;
  double throughput = 0.0;  ///< ok verdicts / serve_seconds
};

/// Lifts RLIMIT_NOFILE toward the hard limit: each benched connection costs
/// two fds (client end + daemon end), so the 1024-connection point needs
/// more than the common 1024 soft default.
bool raise_nofile_limit(rlim_t need) {
  rlimit lim{};
  if (::getrlimit(RLIMIT_NOFILE, &lim) != 0) return false;
  if (lim.rlim_cur >= need) return true;
  lim.rlim_cur = lim.rlim_max == RLIM_INFINITY
                     ? need
                     : std::min<rlim_t>(lim.rlim_max, need);
  ::setrlimit(RLIMIT_NOFILE, &lim);
  return ::getrlimit(RLIMIT_NOFILE, &lim) == 0 && lim.rlim_cur >= need;
}

/// One connection-scaling point: a real magicd event loop on a Unix socket,
/// `connections` concurrent clients, one base64 scan request per client
/// (all pipelined before any response is read, so every connection is
/// simultaneously active).
ConnectionPoint run_connection_point(core::MagicClassifier& clf,
                                     std::size_t connections,
                                     const std::vector<std::string>& requests) {
  serve::ServeConfig config;
  config.workers = 4;
  config.queue_capacity = connections + 16;
  config.max_batch = 8;
  config.batch_window = std::chrono::microseconds(2000);
  serve::InferenceServer server(clf, config);
  std::atomic<bool> stop{false};
  serve::DaemonOptions options;
  options.socket_path = "/tmp/bench_magicd_" + std::to_string(::getpid()) +
                        "_" + std::to_string(connections) + ".sock";
  options.handle_signals = false;
  options.external_stop = &stop;
  std::thread daemon([&] { serve::run_unix_daemon(server, options); });

  ConnectionPoint point;
  point.connections = connections;
  std::vector<std::unique_ptr<serve::wire::UnixClient>> clients;
  clients.reserve(connections);
  util::Timer connect_timer;
  for (std::size_t i = 0; i < connections; ++i) {
    bool connected = false;
    for (int attempt = 0; attempt < 200 && !connected; ++attempt) {
      try {
        clients.push_back(
            std::make_unique<serve::wire::UnixClient>(options.socket_path));
        connected = true;
      } catch (const std::runtime_error&) {
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
      }
    }
    if (!connected) break;
  }
  point.connected = clients.size();
  point.connect_seconds = connect_timer.seconds();

  util::Timer serve_timer;
  for (std::size_t i = 0; i < clients.size(); ++i) {
    clients[i]->send_line(requests[i % requests.size()]);
  }
  std::string line;
  for (auto& client : clients) {
    if (client->recv_line(line) &&
        line.find("\"status\":\"ok\"") != std::string::npos) {
      ++point.ok;
    }
  }
  point.serve_seconds = serve_timer.seconds();
  point.throughput = point.serve_seconds > 0.0
                         ? static_cast<double>(point.ok) / point.serve_seconds
                         : 0.0;
  clients.clear();
  stop.store(true);
  daemon.join();
  return point;
}

std::string json_connection_point(const ConnectionPoint& p) {
  std::ostringstream os;
  os << "{\"connections\":" << p.connections << ",\"connected\":" << p.connected
     << ",\"ok\":" << p.ok << ",\"connect_s\":" << p.connect_seconds
     << ",\"serve_s\":" << p.serve_seconds
     << ",\"throughput_rps\":" << p.throughput << "}";
  return os.str();
}

/// Direct engine comparison on ONE leased replica (threads = 1): the packed
/// block-diagonal forward vs the per-item loop over identical inputs.
struct EngineComparison {
  double per_sample_rps = 0.0;
  double packed_rps = 0.0;
  double speedup = 0.0;
  double max_abs_diff = 0.0;
  bool agree = true;
};

EngineComparison compare_engines(const core::MagicClassifier& clf,
                                 const std::vector<acfg::Acfg>& workload,
                                 std::size_t repeats) {
  core::PredictOptions per_sample;
  per_sample.threads = 1;
  per_sample.engine = core::PredictEngine::PerSample;
  core::PredictOptions packed;
  packed.threads = 1;
  packed.engine = core::PredictEngine::Packed;

  // Warm the replica pool and both code paths so neither timed measurement
  // pays materialization or first-touch costs.
  std::vector<core::Prediction> serial = clf.classify(workload, per_sample);
  std::vector<core::Prediction> fused = clf.classify(workload, packed);

  // Interleave the engines repeat by repeat so slow machine-level drift
  // (frequency scaling, noisy neighbours) hits both measurements equally.
  EngineComparison cmp;
  double serial_s = 0.0, packed_s = 0.0;
  for (std::size_t r = 0; r < repeats; ++r) {
    util::Timer serial_timer;
    serial = clf.classify(workload, per_sample);
    serial_s += serial_timer.seconds();
    util::Timer packed_timer;
    fused = clf.classify(workload, packed);
    packed_s += packed_timer.seconds();
  }

  const double total = static_cast<double>(workload.size() * repeats);
  cmp.per_sample_rps = serial_s > 0.0 ? total / serial_s : 0.0;
  cmp.packed_rps = packed_s > 0.0 ? total / packed_s : 0.0;
  cmp.speedup = cmp.per_sample_rps > 0.0 ? cmp.packed_rps / cmp.per_sample_rps : 0.0;
  for (std::size_t i = 0; i < serial.size(); ++i) {
    if (fused[i].family_index != serial[i].family_index) cmp.agree = false;
    for (std::size_t c = 0; c < serial[i].probabilities.size(); ++c) {
      const double a = fused[i].probabilities[c];
      const double b = serial[i].probabilities[c];
      cmp.max_abs_diff = std::max(cmp.max_abs_diff, std::abs(a - b));
      if (std::abs(a - b) > 1e-9 * std::max(1.0, std::abs(b))) cmp.agree = false;
    }
  }
  return cmp;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse(argc, argv);
  if (!opt.metrics_out.empty()) magic::obs::set_enabled(true);
  const unsigned hardware = std::thread::hardware_concurrency();
  std::cout << "bench_serve_throughput: serving sweep ("
            << opt.samples << " samples, hardware_concurrency=" << hardware
            << ")\n";

  util::ThreadPool pool;
  util::Timer setup;
  data::Dataset corpus = data::yancfg_like_corpus(opt.scale, opt.seed, pool);
  core::DgcnnConfig config;
  config.pooling = core::PoolingType::AdaptivePooling;
  config.pooling_ratio = 0.2;
  config.graph_conv_channels = {32, 32};
  config.dropout_rate = 0.5;
  core::TrainOptions train;
  train.epochs = opt.epochs;
  train.batch_size = 10;
  train.learning_rate = 3e-3;
  train.balance_families = true;
  train.balance_strength = 0.5;
  core::MagicClassifier clf(config, train, opt.seed);
  clf.fit(corpus, 0.15);
  const std::vector<acfg::Acfg> workload =
      make_workload(opt.samples, opt.seed, pool);
  std::cout << "trained on " << corpus.size() << " samples and extracted "
            << workload.size() << " scan requests in "
            << util::format_fixed(setup.seconds(), 1) << "s\n\n";

  const std::size_t worker_counts[] = {1, 2, 4, 8};
  std::vector<SweepPoint> points;
  util::Table table({"Workers", "Batching", "Throughput (req/s)",
                     "Mean batch", "p50 (ms)", "p95 (ms)", "p99 (ms)"});
  for (std::size_t workers : worker_counts) {
    for (bool batched : {false, true}) {
      const SweepPoint p = run_point(clf, workload, workers, batched);
      table.add_row({std::to_string(p.workers), batched ? "on" : "off",
                     util::format_fixed(p.throughput, 1),
                     util::format_fixed(p.stats.mean_batch_size(), 2),
                     util::format_fixed(p.stats.latency_p50_ms, 2),
                     util::format_fixed(p.stats.latency_p95_ms, 2),
                     util::format_fixed(p.stats.latency_p99_ms, 2)});
      points.push_back(p);
    }
  }
  table.print(std::cout);

  double base = 0.0, best8 = 0.0;
  for (const SweepPoint& p : points) {
    if (p.workers == 1 && !p.batched) base = p.throughput;
    if (p.workers == 8 && p.batched) best8 = p.throughput;
  }
  const double speedup = base > 0.0 ? best8 / base : 0.0;
  std::cout << "\nspeedup (8 workers, batched vs 1 worker, unbatched): "
            << util::format_fixed(speedup, 2) << "x\n";

  // ---- Connection scaling (epoll daemon over a Unix socket) --------------
  const std::size_t conn_counts[] = {64, 256, 1024};
  const std::size_t max_conns =
      *std::max_element(std::begin(conn_counts), std::end(conn_counts));
  std::vector<ConnectionPoint> conn_points;
  bool conn_failed = false;
  if (!raise_nofile_limit(static_cast<rlim_t>(2 * max_conns + 64))) {
    std::cerr << "FAIL: cannot raise RLIMIT_NOFILE for the "
              << max_conns << "-connection point\n";
    conn_failed = true;
  } else {
    std::cout << "\nconnection scaling (epoll daemon, 1 request per "
                 "connection, all pipelined):\n";
    std::vector<std::string> requests;
    requests.reserve(max_conns);
    const std::vector<std::string> listings =
        make_listings(max_conns, opt.seed ^ 0xC0117);
    for (std::size_t i = 0; i < listings.size(); ++i) {
      requests.push_back("q" + std::to_string(i) + " b64 " +
                         serve::wire::base64_encode(listings[i]));
    }
    util::Table conn_table({"Connections", "Connect (s)", "Serve (s)",
                            "Throughput (req/s)", "OK"});
    for (std::size_t n : conn_counts) {
      const ConnectionPoint p = run_connection_point(clf, n, requests);
      conn_table.add_row(
          {std::to_string(p.connections),
           util::format_fixed(p.connect_seconds, 2),
           util::format_fixed(p.serve_seconds, 2),
           util::format_fixed(p.throughput, 1),
           std::to_string(p.ok) + "/" + std::to_string(p.connections)});
      if (p.connected != p.connections || p.ok != p.connections) {
        std::cerr << "FAIL: " << p.connected << "/" << p.connections
                  << " connected, " << p.ok << " ok verdicts\n";
        conn_failed = true;
      }
      conn_points.push_back(p);
    }
    conn_table.print(std::cout);
  }

  std::ofstream out(opt.out);
  out << "{\"bench\":\"serve_throughput\",\"samples\":" << opt.samples
      << ",\"hardware_concurrency\":" << hardware
      << ",\"seed\":" << opt.seed
      << ",\"speedup_8w_batched\":" << speedup << ",\"sweep\":[";
  for (std::size_t i = 0; i < points.size(); ++i) {
    if (i != 0) out << ",";
    out << json_point(points[i]);
  }
  out << "],\"connections\":[";
  for (std::size_t i = 0; i < conn_points.size(); ++i) {
    if (i != 0) out << ",";
    out << json_connection_point(conn_points[i]);
  }
  out << "]}\n";
  std::cout << "wrote " << opt.out << "\n";

  // ---- Packed vs per-sample engine comparison (BENCH_batch.json) ---------
  //
  // Measured on the paper's original DGCNN head (SortPooling -> Conv1D):
  // that variant batches end to end (block-diagonal graph conv, per-segment
  // sort pooling, fused dense head), whereas the AMP variant above spends
  // most of its time in a pre-pool Conv2D over variable-height images that
  // cannot batch. Same corpus, same workload, same replica count.
  core::DgcnnConfig sp_config;
  sp_config.pooling = core::PoolingType::SortPooling;
  sp_config.remaining = core::RemainingLayer::Conv1D;
  sp_config.pooling_ratio = 0.6;
  sp_config.graph_conv_channels = {32, 32};
  sp_config.dropout_rate = 0.5;
  core::MagicClassifier sp_clf(sp_config, train, opt.seed);
  sp_clf.fit(corpus, 0.15);

  std::cout << "\npacked vs per-sample engine (SortPooling/Conv1D, threads=1, "
               "one replica):\n";
  const std::size_t repeats = opt.quick ? 8 : 16;
  const EngineComparison cmp = compare_engines(sp_clf, workload, repeats);
  std::cout << "  per-sample: " << util::format_fixed(cmp.per_sample_rps, 1)
            << " graphs/s\n  packed:     "
            << util::format_fixed(cmp.packed_rps, 1) << " graphs/s\n  speedup:    "
            << util::format_fixed(cmp.speedup, 2) << "x  (max |diff| "
            << cmp.max_abs_diff << ")\n";

  // Serving layer, same replica count for both engines.
  const std::size_t serve_workers = 2;
  const SweepPoint serve_per_sample =
      run_point(sp_clf, workload, serve_workers, /*batched=*/true,
                core::PredictEngine::PerSample);
  const SweepPoint serve_packed =
      run_point(sp_clf, workload, serve_workers, /*batched=*/true,
                core::PredictEngine::Packed);
  std::cout << "  serve (" << serve_workers << " workers, micro-batched): "
            << util::format_fixed(serve_per_sample.throughput, 1)
            << " -> " << util::format_fixed(serve_packed.throughput, 1)
            << " req/s, " << serve_packed.stats.packed_batches
            << " packed batches\n";

  std::ofstream batch_out(opt.batch_out);
  batch_out << "{\"bench\":\"packed_batch\",\"model\":\"" << sp_config.describe()
            << "\",\"samples\":" << opt.samples
            << ",\"hardware_concurrency\":" << hardware
            << ",\"seed\":" << opt.seed
            << ",\"repeats\":" << repeats
            << ",\"direct\":{\"per_sample_rps\":" << cmp.per_sample_rps
            << ",\"packed_rps\":" << cmp.packed_rps
            << ",\"speedup_packed\":" << cmp.speedup
            << ",\"max_abs_diff\":" << cmp.max_abs_diff
            << ",\"agree_1e9\":" << (cmp.agree ? "true" : "false")
            << "},\"serve\":{\"workers\":" << serve_workers
            << ",\"per_sample\":" << json_point(serve_per_sample)
            << ",\"packed\":" << json_point(serve_packed) << "}}\n";
  std::cout << "wrote " << opt.batch_out << "\n";

  bool failed = conn_failed;
  if (!cmp.agree) {
    std::cerr << "FAIL: packed and per-sample predictions disagree beyond "
                 "1e-9 relative tolerance\n";
    failed = true;
  }
  if (serve_packed.stats.packed_batches == 0) {
    std::cerr << "FAIL: packed serve point never executed a packed batch\n";
    failed = true;
  }

  if (!opt.metrics_out.empty()) {
    std::ofstream metrics(opt.metrics_out);
    metrics << magic::obs::MetricsRegistry::global().snapshot_json() << "\n";
    std::cout << "wrote " << opt.metrics_out << "\n";
  }
  return failed ? 1 : 0;
}
