// Ablation study of the design choices DESIGN.md calls out:
//   1. head choice: SortPooling+Conv1D (original DGCNN) vs the paper's two
//      extensions (SortPooling+WeightedVertices, Conv2D+AdaptiveMaxPooling);
//   2. degree normalization: D^-1 (A+I) vs unnormalized A+I;
//   3. attribute channels: full Table I vs code-only vs structure-only;
//   4. graph-convolution depth h in {1, 2, 4};
//   5. graph-convolution operator: paper (Eq. 1) vs SAGE vs TAG, on BOTH
//      synthetic corpora (accuracy and per-epoch time per operator).
//
// Each variant is cross-validated on the same MSKCFG-scale corpus; higher
// accuracy / lower loss means the design choice pulls its weight. The
// operator sweep (section 5) additionally runs the YANCFG-style corpus so
// an operator that only helps on one family mix shows up.
//
// Extra flags (before the common bench flags):
//   --out FILE   JSON results path (default BENCH_ablation.json)
//   --ops-only   skip the design-choice table, run only the operator sweep
//                (the CI bench job uses this for a quick artifact)

#include <cstring>
#include <fstream>

#include "bench_util.hpp"

#include "acfg/attributes.hpp"
#include "data/corpus.hpp"
#include "util/string_util.hpp"
#include "util/timer.hpp"

namespace {

using namespace magic;

core::DgcnnConfig base_config() {
  core::DgcnnConfig cfg;
  cfg.pooling = core::PoolingType::AdaptivePooling;
  cfg.pooling_ratio = 0.64;
  cfg.graph_conv_channels = {32, 32, 32, 32};
  cfg.conv2d_channels = 16;
  cfg.dropout_rate = 0.1;
  return cfg;
}

/// Returns a copy of the dataset with all channels outside `keep` zeroed.
data::Dataset mask_channels(const data::Dataset& d, const std::vector<bool>& keep) {
  data::Dataset out = d;
  for (auto& s : out.samples) {
    const std::size_t c = s.num_channels();
    for (std::size_t i = 0; i < s.num_vertices(); ++i) {
      for (std::size_t ch = 0; ch < c; ++ch) {
        if (!keep[ch]) s.attributes[i * c + ch] = 0.0;
      }
    }
  }
  return out;
}

struct RunRecord {
  std::string name;
  std::string corpus;
  double accuracy = 0.0;
  double log_loss = 0.0;
  double macro_f1 = 0.0;
  double seconds = 0.0;
  double epoch_seconds = 0.0;
};

void append_json(std::ostream& os, const std::vector<RunRecord>& records) {
  for (std::size_t i = 0; i < records.size(); ++i) {
    const RunRecord& r = records[i];
    if (i > 0) os << ',';
    os << "{\"name\":\"" << r.name << "\",\"corpus\":\"" << r.corpus
       << "\",\"accuracy\":" << r.accuracy << ",\"log_loss\":" << r.log_loss
       << ",\"macro_f1\":" << r.macro_f1 << ",\"seconds\":" << r.seconds
       << ",\"epoch_seconds\":" << r.epoch_seconds << "}";
  }
}

}  // namespace

int main(int argc, char** argv) {
  // Bench-specific flags are stripped before the shared parser sees argv
  // (the bench_table2 --full-grid pattern).
  std::string out_path = "BENCH_ablation.json";
  bool ops_only = false;
  std::vector<char*> filtered;
  filtered.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--ops-only") == 0) ops_only = true;
    else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) out_path = argv[++i];
    else filtered.push_back(argv[i]);
  }
  bench::BenchOptions defaults;
  defaults.scale = 0.006;
  defaults.epochs = 8;
  defaults.folds = 3;
  const auto opt = bench::parse_options(static_cast<int>(filtered.size()),
                                        filtered.data(), defaults);
  bench::banner("Ablation: heads, normalization, attributes, depth, operators",
                "design-choice ablations for Yan et al., DSN 2019", opt);

  util::ThreadPool pool(opt.threads);
  data::Dataset d = data::mskcfg_like_corpus(opt.scale, opt.seed, pool);
  std::cout << "corpus: " << d.size() << " samples\n\n";

  struct Variant {
    std::string name;
    core::DgcnnConfig config;
    const data::Dataset* dataset;
  };

  std::vector<RunRecord> variant_records;
  if (!ops_only) {
    // Attribute-mask datasets.
    std::vector<bool> code_only(acfg::kNumChannels, true);
    code_only[acfg::kOffspring] = false;
    code_only[acfg::kVertexInsts] = false;
    std::vector<bool> structure_only(acfg::kNumChannels, false);
    structure_only[acfg::kOffspring] = true;
    structure_only[acfg::kVertexInsts] = true;
    data::Dataset d_code = mask_channels(d, code_only);
    data::Dataset d_struct = mask_channels(d, structure_only);

    std::vector<Variant> variants;
    {
      core::DgcnnConfig c = base_config();
      variants.push_back({"AMP head (paper ext. 2) [base]", c, &d});
    }
    {
      core::DgcnnConfig c = base_config();
      c.pooling = core::PoolingType::SortPooling;
      c.remaining = core::RemainingLayer::Conv1D;
      variants.push_back({"SortPool + Conv1D (original DGCNN)", c, &d});
    }
    {
      core::DgcnnConfig c = base_config();
      c.pooling = core::PoolingType::SortPooling;
      c.remaining = core::RemainingLayer::WeightedVertices;
      variants.push_back({"SortPool + WeightedVertices (paper ext. 1)", c, &d});
    }
    {
      core::DgcnnConfig c = base_config();
      c.normalize_propagation = false;
      variants.push_back({"no D^-1 normalization (raw A+I)", c, &d});
    }
    {
      core::DgcnnConfig c = base_config();
      c.log1p_attributes = false;
      variants.push_back({"no log1p attribute scaling", c, &d});
    }
    {
      core::DgcnnConfig c = base_config();
      variants.push_back({"code-sequence attributes only (9ch)", c, &d_code});
    }
    {
      core::DgcnnConfig c = base_config();
      variants.push_back({"structure attributes only (2ch)", c, &d_struct});
    }
    {
      core::DgcnnConfig c = base_config();
      c.graph_conv_channels = {32};
      variants.push_back({"depth h=1", c, &d});
    }
    {
      core::DgcnnConfig c = base_config();
      c.graph_conv_channels = {32, 32};
      variants.push_back({"depth h=2", c, &d});
    }

    util::Table table({"Variant", "Accuracy", "Mean log loss", "Macro F1", "Time s"});
    for (const auto& v : variants) {
      util::Timer timer;
      core::CvResult cv = bench::run_cv(v.config, *v.dataset, opt, pool);
      const double seconds = timer.seconds();
      table.add_row({v.name, util::format_fixed(cv.accuracy, 4),
                     util::format_fixed(cv.mean_log_loss, 4),
                     util::format_fixed(cv.confusion.macro_f1(), 4),
                     util::format_fixed(seconds, 1)});
      variant_records.push_back(
          {v.name, "mskcfg", cv.accuracy, cv.mean_log_loss,
           cv.confusion.macro_f1(), seconds,
           seconds / static_cast<double>(opt.folds * opt.epochs)});
      std::cout << "done: " << v.name << "\n";
    }
    std::cout << "\n";
    table.print(std::cout);
    std::cout << "\nreading: the full-attribute, normalized, multi-layer variants\n"
                 "should dominate the stripped ones; all three heads should be\n"
                 "serviceable with AMP best (matching Table II's selection).\n\n";
  }

  // Operator sweep: the whole zoo on both synthetic corpora. The base head
  // is fixed so the only moving part is the convolution formula.
  data::Dataset y = data::yancfg_like_corpus(opt.scale, opt.seed + 1, pool);
  std::cout << "operator sweep: yancfg corpus " << y.size() << " samples\n\n";
  const struct {
    nn::GraphConvOperator op;
    const char* name;
  } kOperators[] = {{nn::GraphConvOperator::Paper, "paper"},
                    {nn::GraphConvOperator::Sage, "sage"},
                    {nn::GraphConvOperator::Tag, "tag"}};
  const struct {
    const char* name;
    const data::Dataset* dataset;
  } kCorpora[] = {{"mskcfg", &d}, {"yancfg", &y}};

  std::vector<RunRecord> op_records;
  util::Table op_table(
      {"Operator", "Corpus", "Accuracy", "Mean log loss", "Macro F1", "Epoch s"});
  for (const auto& sweep_op : kOperators) {
    for (const auto& corpus : kCorpora) {
      core::DgcnnConfig c = base_config();
      c.graph_conv_op = sweep_op.op;
      util::Timer timer;
      core::CvResult cv = bench::run_cv(c, *corpus.dataset, opt, pool);
      const double seconds = timer.seconds();
      const double epoch_seconds =
          seconds / static_cast<double>(opt.folds * opt.epochs);
      op_table.add_row({sweep_op.name, corpus.name,
                        util::format_fixed(cv.accuracy, 4),
                        util::format_fixed(cv.mean_log_loss, 4),
                        util::format_fixed(cv.confusion.macro_f1(), 4),
                        util::format_fixed(epoch_seconds, 2)});
      op_records.push_back({sweep_op.name, corpus.name, cv.accuracy,
                            cv.mean_log_loss, cv.confusion.macro_f1(), seconds,
                            epoch_seconds});
      std::cout << "done: op=" << sweep_op.name << " corpus=" << corpus.name << "\n";
    }
  }
  std::cout << "\n";
  op_table.print(std::cout);
  std::cout << "\nreading: paper (Eq. 1) is the reference; SAGE/TAG trade\n"
               "parameters (2x / (K+1)x wider weights) for neighborhood\n"
               "context, so watch epoch time alongside accuracy.\n";

  std::ofstream out(out_path);
  out << "{\"schema\":\"magic.bench.ablation.v1\",\"scale\":" << opt.scale
      << ",\"epochs\":" << opt.epochs << ",\"folds\":" << opt.folds
      << ",\"seed\":" << opt.seed << ",\"variants\":[";
  append_json(out, variant_records);
  out << "],\"operators\":[";
  append_json(out, op_records);
  out << "]}\n";
  std::cout << "wrote " << out_path << "\n";
  return 0;
}
