// Ablation study of the design choices DESIGN.md calls out:
//   1. head choice: SortPooling+Conv1D (original DGCNN) vs the paper's two
//      extensions (SortPooling+WeightedVertices, Conv2D+AdaptiveMaxPooling);
//   2. degree normalization: D^-1 (A+I) vs unnormalized A+I;
//   3. attribute channels: full Table I vs code-only vs structure-only;
//   4. graph-convolution depth h in {1, 2, 4}.
//
// Each variant is cross-validated on the same MSKCFG-scale corpus; higher
// accuracy / lower loss means the design choice pulls its weight.

#include "bench_util.hpp"

#include "acfg/attributes.hpp"
#include "data/corpus.hpp"
#include "util/string_util.hpp"
#include "util/timer.hpp"

namespace {

using namespace magic;

core::DgcnnConfig base_config() {
  core::DgcnnConfig cfg;
  cfg.pooling = core::PoolingType::AdaptivePooling;
  cfg.pooling_ratio = 0.64;
  cfg.graph_conv_channels = {32, 32, 32, 32};
  cfg.conv2d_channels = 16;
  cfg.dropout_rate = 0.1;
  return cfg;
}

/// Returns a copy of the dataset with all channels outside `keep` zeroed.
data::Dataset mask_channels(const data::Dataset& d, const std::vector<bool>& keep) {
  data::Dataset out = d;
  for (auto& s : out.samples) {
    const std::size_t c = s.num_channels();
    for (std::size_t i = 0; i < s.num_vertices(); ++i) {
      for (std::size_t ch = 0; ch < c; ++ch) {
        if (!keep[ch]) s.attributes[i * c + ch] = 0.0;
      }
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchOptions defaults;
  defaults.scale = 0.006;
  defaults.epochs = 8;
  defaults.folds = 3;
  const auto opt = bench::parse_options(argc, argv, defaults);
  bench::banner("Ablation: heads, normalization, attributes, depth",
                "design-choice ablations for Yan et al., DSN 2019", opt);

  util::ThreadPool pool(opt.threads);
  data::Dataset d = data::mskcfg_like_corpus(opt.scale, opt.seed, pool);
  std::cout << "corpus: " << d.size() << " samples\n\n";

  struct Variant {
    std::string name;
    core::DgcnnConfig config;
    const data::Dataset* dataset;
  };

  // Attribute-mask datasets.
  std::vector<bool> code_only(acfg::kNumChannels, true);
  code_only[acfg::kOffspring] = false;
  code_only[acfg::kVertexInsts] = false;
  std::vector<bool> structure_only(acfg::kNumChannels, false);
  structure_only[acfg::kOffspring] = true;
  structure_only[acfg::kVertexInsts] = true;
  data::Dataset d_code = mask_channels(d, code_only);
  data::Dataset d_struct = mask_channels(d, structure_only);

  std::vector<Variant> variants;
  {
    core::DgcnnConfig c = base_config();
    variants.push_back({"AMP head (paper ext. 2) [base]", c, &d});
  }
  {
    core::DgcnnConfig c = base_config();
    c.pooling = core::PoolingType::SortPooling;
    c.remaining = core::RemainingLayer::Conv1D;
    variants.push_back({"SortPool + Conv1D (original DGCNN)", c, &d});
  }
  {
    core::DgcnnConfig c = base_config();
    c.pooling = core::PoolingType::SortPooling;
    c.remaining = core::RemainingLayer::WeightedVertices;
    variants.push_back({"SortPool + WeightedVertices (paper ext. 1)", c, &d});
  }
  {
    core::DgcnnConfig c = base_config();
    c.normalize_propagation = false;
    variants.push_back({"no D^-1 normalization (raw A+I)", c, &d});
  }
  {
    core::DgcnnConfig c = base_config();
    c.log1p_attributes = false;
    variants.push_back({"no log1p attribute scaling", c, &d});
  }
  {
    core::DgcnnConfig c = base_config();
    variants.push_back({"code-sequence attributes only (9ch)", c, &d_code});
  }
  {
    core::DgcnnConfig c = base_config();
    variants.push_back({"structure attributes only (2ch)", c, &d_struct});
  }
  {
    core::DgcnnConfig c = base_config();
    c.graph_conv_channels = {32};
    variants.push_back({"depth h=1", c, &d});
  }
  {
    core::DgcnnConfig c = base_config();
    c.graph_conv_channels = {32, 32};
    variants.push_back({"depth h=2", c, &d});
  }

  util::Table table({"Variant", "Accuracy", "Mean log loss", "Macro F1", "Time s"});
  for (const auto& v : variants) {
    util::Timer timer;
    core::CvResult cv = bench::run_cv(v.config, *v.dataset, opt, pool);
    table.add_row({v.name, util::format_fixed(cv.accuracy, 4),
                   util::format_fixed(cv.mean_log_loss, 4),
                   util::format_fixed(cv.confusion.macro_f1(), 4),
                   util::format_fixed(timer.seconds(), 1)});
    std::cout << "done: " << v.name << "\n";
  }
  std::cout << "\n";
  table.print(std::cout);
  std::cout << "\nreading: the full-attribute, normalized, multi-layer variants\n"
               "should dominate the stripped ones; all three heads should be\n"
               "serviceable with AMP best (matching Table II's selection).\n";
  return 0;
}
