// Table III / Figure 9: per-family precision, recall and F1 of MAGIC on the
// MSKCFG dataset under stratified 5-fold cross-validation, using the best
// MSKCFG model of Table II (AdaptivePooling, ratio 0.64, graph conv
// (128, 64, 32, 32), 16 Conv2D channels, dropout 0.1, batch 10, L2 1e-4).
//
// Expected shape (paper): every family above 0.96 precision/recall, with
// Kelihos_ver3 perfect and Ramnit/Obfuscator.ACY the (slightly) hardest.

#include "bench_util.hpp"

#include "data/corpus.hpp"
#include "util/string_util.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace magic;
  bench::BenchOptions defaults;
  defaults.scale = 0.015;
  defaults.epochs = 14;
  const auto opt = bench::parse_options(argc, argv, defaults);
  bench::banner("Table III / Fig. 9: MAGIC cross-validation scores on MSKCFG",
                "Table III and Fig. 9 of Yan et al., DSN 2019", opt);

  util::ThreadPool pool(opt.threads);
  util::Timer timer;
  data::Dataset d = data::mskcfg_like_corpus(opt.scale, opt.seed, pool);
  std::cout << "corpus: " << d.size() << " samples, " << d.num_families()
            << " families (" << util::format_fixed(timer.seconds(), 1) << "s to build)\n\n";

  timer.reset();
  core::CvResult cv = bench::run_cv(bench::best_mskcfg_config(), d, opt, pool);
  std::cout << "cross-validation took " << util::format_fixed(timer.seconds(), 1)
            << "s\n\n";

  // Paper Table III F1 per family, in spec order.
  const std::vector<double> paper_f1 = {0.976615, 0.996754, 1.000000, 0.990895,
                                        0.994987, 0.993463, 0.991156, 0.978655,
                                        0.998304};
  bench::print_family_scores(d, cv, paper_f1);
  std::cout << "paper: accuracy 0.9925, mean log loss 0.0543 (Table IV)\n";
  return 0;
}
