// Table IV: cross-validation metric comparison on the Microsoft dataset.
//
// The paper compares MAGIC (log loss 0.0543, accuracy 99.25%) against five
// prior works on handcrafted features. We reproduce the comparison's shape
// on the same synthetic corpus: MAGIC (graph-structural DGCNN) vs.
//   - XGBoost-style gradient boosting on aggregate features [13]
//   - deep-autoencoder + gradient boosting [9]
//   - random forest [11][14]
//   - a sequence/SVM-style flat baseline (EnsembleSvc, standing in for the
//     weaker flat models of Table IV).
//
// Expected shape: GBT-family baselines and MAGIC are close (within a few
// points), flat margin-based models trail, as in the paper.

#include "bench_util.hpp"

#include "baselines/autoencoder.hpp"
#include "baselines/gbdt.hpp"
#include "baselines/ngram.hpp"
#include "baselines/random_forest.hpp"
#include "baselines/svm.hpp"
#include "data/corpus.hpp"
#include "ml/features.hpp"
#include "ml/metrics.hpp"
#include "util/string_util.hpp"
#include "util/timer.hpp"

namespace {

using namespace magic;

struct BaselineResult {
  std::string name;
  double log_loss = 0.0;
  double accuracy = 0.0;
};

/// K-fold CV of one flat-feature baseline over the same folds MAGIC uses.
BaselineResult evaluate_baseline(const std::string& name,
                                 baselines::Classifier& clf,
                                 const data::Dataset& dataset,
                                 const ml::FeatureMatrix& features,
                                 std::size_t folds, std::uint64_t seed) {
  util::Rng rng(seed);
  const auto splits = data::stratified_k_fold(dataset, folds, rng);
  std::vector<std::vector<double>> probs;
  std::vector<std::size_t> labels;
  std::size_t correct = 0, total = 0;
  for (const auto& split : splits) {
    ml::FeatureMatrix train;
    for (std::size_t i : split.train) {
      train.rows.push_back(features.rows[i]);
      train.labels.push_back(features.labels[i]);
    }
    clf.fit(train, dataset.num_families());
    for (std::size_t i : split.validation) {
      auto p = clf.predict_proba(features.rows[i]);
      std::size_t arg = 0;
      for (std::size_t c = 1; c < p.size(); ++c) {
        if (p[c] > p[arg]) arg = c;
      }
      correct += (arg == features.labels[i]) ? 1 : 0;
      ++total;
      probs.push_back(std::move(p));
      labels.push_back(features.labels[i]);
    }
  }
  BaselineResult result;
  result.name = name;
  result.log_loss = ml::mean_log_loss(probs, labels);
  result.accuracy = static_cast<double>(correct) / static_cast<double>(total);
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchOptions defaults;
  defaults.scale = 0.015;
  defaults.epochs = 14;
  const auto opt = bench::parse_options(argc, argv, defaults);
  bench::banner("Table IV: MAGIC vs handcrafted-feature baselines (MSKCFG)",
                "Table IV of Yan et al., DSN 2019", opt);

  util::ThreadPool pool(opt.threads);
  data::Dataset d = data::mskcfg_like_corpus(opt.scale, opt.seed, pool);
  std::cout << "corpus: " << d.size() << " samples, " << d.num_families()
            << " families\n\n";
  const ml::FeatureMatrix features = ml::aggregate_feature_matrix(d.samples);

  util::Timer timer;
  std::vector<BaselineResult> rows;

  // MAGIC itself (the best-MSKCFG DGCNN).
  {
    core::CvResult cv = bench::run_cv(bench::best_mskcfg_config(), d, opt, pool);
    rows.push_back({"MAGIC (DGCNN, this work)", cv.mean_log_loss, cv.accuracy});
    std::cout << "MAGIC CV done in " << util::format_fixed(timer.seconds(), 1) << "s\n";
  }
  {
    timer.reset();
    baselines::Gbdt gbdt({.num_rounds = 40, .learning_rate = 0.25, .lambda = 1.0,
                          .subsample = 0.9,
                          .tree = {.max_depth = 5, .min_samples_leaf = 2,
                                   .feature_fraction = 0.9},
                          .seed = opt.seed});
    rows.push_back(evaluate_baseline("GBT w/ aggregate features (XGBoost [13])",
                                     gbdt, d, features, opt.folds, opt.seed));
    std::cout << "GBT done in " << util::format_fixed(timer.seconds(), 1) << "s\n";
  }
  {
    timer.reset();
    baselines::AutoencoderOptions ae;
    ae.latent_dim = 16;
    ae.epochs = 20;
    ae.gbdt.num_rounds = 30;
    ae.seed = opt.seed;
    baselines::AutoencoderGbt clf(ae);
    rows.push_back(evaluate_baseline("Autoencoder + GBT [9]", clf, d, features,
                                     opt.folds, opt.seed));
    std::cout << "AE+GBT done in " << util::format_fixed(timer.seconds(), 1) << "s\n";
  }
  {
    timer.reset();
    baselines::RandomForest rf({.num_trees = 80,
                                .tree = {.max_depth = 10, .min_samples_leaf = 1,
                                         .feature_fraction = 0.5},
                                .bootstrap_fraction = 1.0,
                                .seed = opt.seed});
    rows.push_back(evaluate_baseline("Random forest [11][14]", rf, d, features,
                                     opt.folds, opt.seed));
    std::cout << "RF done in " << util::format_fixed(timer.seconds(), 1) << "s\n";
  }
  {
    timer.reset();
    baselines::EnsembleSvc svc({.lambda = 1e-4, .epochs = 15, .seed = opt.seed});
    rows.push_back(evaluate_baseline("Flat margin baseline (SVM ensemble)", svc, d,
                                     features, opt.folds, opt.seed));
    std::cout << "SVM done in " << util::format_fixed(timer.seconds(), 1) << "s\n";
  }
  {
    // Opcode-sequence n-gram classifier (the [15] stand-in). Listings are
    // regenerated with the corpus seed, so indices align with the dataset.
    timer.reset();
    const auto listings =
        data::generate_listings(data::mskcfg_family_specs(), opt.scale, opt.seed);
    util::Rng fold_rng(opt.seed);
    const auto splits = data::stratified_k_fold(d, opt.folds, fold_rng);
    std::vector<std::vector<double>> probs;
    std::vector<std::size_t> labels;
    std::size_t correct = 0, total = 0;
    for (const auto& split : splits) {
      std::vector<std::string> train_l;
      std::vector<std::size_t> train_y;
      for (std::size_t i : split.train) {
        train_l.push_back(listings[i].first);
        train_y.push_back(static_cast<std::size_t>(listings[i].second));
      }
      baselines::NgramSequenceClassifier ngram(3, 512);
      ngram.fit(train_l, train_y, d.num_families());
      for (std::size_t i : split.validation) {
        auto p = ngram.predict_proba(listings[i].first);
        std::size_t arg = 0;
        for (std::size_t c = 1; c < p.size(); ++c) {
          if (p[c] > p[arg]) arg = c;
        }
        const auto y = static_cast<std::size_t>(listings[i].second);
        correct += (arg == y) ? 1 : 0;
        ++total;
        probs.push_back(std::move(p));
        labels.push_back(y);
      }
    }
    rows.push_back({"Opcode n-gram sequence classifier [15]",
                    ml::mean_log_loss(probs, labels),
                    static_cast<double>(correct) / static_cast<double>(total)});
    std::cout << "n-gram done in " << util::format_fixed(timer.seconds(), 1) << "s\n";
  }

  std::cout << "\n";
  util::Table table({"Approach", "Mean log loss", "Accuracy %"});
  for (const auto& r : rows) {
    table.add_row({r.name, util::format_fixed(r.log_loss, 4),
                   util::format_fixed(100.0 * r.accuracy, 2)});
  }
  table.print(std::cout);

  std::cout << "\npaper (Table IV, full 10,868-sample corpus):\n";
  util::Table paper({"Approach", "Mean log loss", "Accuracy %"});
  paper.add_row({"MAGIC", "0.0543", "99.25"});
  paper.add_row({"XGBoost w/ heavy feature engineering [13]", "0.0197", "99.42"});
  paper.add_row({"Deep autoencoder based XGBoost [9]", "0.0748", "98.20"});
  paper.add_row({"Strand gene sequence classifier [15]", "0.2228", "97.41"});
  paper.add_row({"Ensemble of random forests [11]", "n/a", "99.30"});
  paper.add_row({"Random forest w/ features [14]", "n/a", "99.21"});
  paper.print(std::cout);
  return 0;
}
