// bench_train_throughput: data-parallel training engine scaling sweep.
//
// Builds a YANCFG-style corpus, then trains the same DgcnnModel from the
// same seed at 1 / 2 / 4 / hardware_concurrency threads, measuring epoch
// wall-time and training throughput (graphs/second). Because the engine
// reduces per-sample gradients in fixed sample-index order, every sweep
// point must produce a bitwise-identical loss history; the sweep verifies
// that and records it in the JSON.
//
// A GEMM microbenchmark section compares the dispatched kernels (matmul,
// matmul_tn) against a naive ikj reference and the transpose-then-multiply
// formulation they replace. This section is a GATE: any kernel whose
// speedup over its reference drops below 1.0x fails the run (nonzero exit),
// so a dispatch or kernel regression cannot land silently.
//
// Writes BENCH_train.json.
//
// Flags:
//   --scale S      training-corpus scale (default 0.004)
//   --epochs N     epochs per sweep point (default 4)
//   --seed X       master seed (default 2019)
//   --threads CSV  explicit thread counts, e.g. 1,2,4 (default 1,2,4,hw)
//   --out FILE     JSON output path (default BENCH_train.json)
//   --quick        tiny run for CI smoke (scale and epochs clamped)
//   --metrics-out FILE  enable magic::obs and dump the process-wide metrics
//                  snapshot (per-epoch forward/backward/reduce/optimizer
//                  phase timings, extraction spans) as JSON

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <limits>
#include <sstream>
#include <string>
#include <thread>
#include <tuple>
#include <utility>
#include <vector>

#include "data/corpus.hpp"
#include "magic/trainer.hpp"
#include "obs/metrics.hpp"
#include "tensor/simd/dispatch.hpp"
#include "tensor/tensor.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace {

using namespace magic;

struct Options {
  double scale = 0.004;
  std::size_t epochs = 4;
  std::uint64_t seed = 2019;
  std::vector<std::size_t> threads;
  std::string out = "BENCH_train.json";
  std::string metrics_out;
  bool quick = false;
};

struct SweepPoint {
  std::size_t threads = 0;
  double seconds = 0.0;
  double epoch_seconds = 0.0;
  double graphs_per_second = 0.0;
  std::vector<double> train_loss_history;
};

struct GemmPoint {
  std::string name;
  std::size_t m = 0, k = 0, n = 0;
  double tiled_us = 0.0;
  double reference_us = 0.0;
  double speedup = 0.0;
};

Options parse(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* flag) -> std::string {
      if (i + 1 >= argc) {
        std::cerr << flag << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--scale") opt.scale = std::stod(next("--scale"));
    else if (arg == "--epochs") opt.epochs = std::stoul(next("--epochs"));
    else if (arg == "--seed") opt.seed = std::stoull(next("--seed"));
    else if (arg == "--out") opt.out = next("--out");
    else if (arg == "--metrics-out") opt.metrics_out = next("--metrics-out");
    else if (arg == "--quick") opt.quick = true;
    else if (arg == "--threads") {
      opt.threads.clear();
      std::istringstream list(next("--threads"));
      std::string item;
      while (std::getline(list, item, ',')) {
        opt.threads.push_back(std::stoul(item));
      }
    } else {
      std::cerr << "unknown flag " << arg << "\n"
                << "usage: bench_train_throughput [--scale S] [--epochs N] "
                   "[--seed X] [--threads CSV] [--out FILE] [--quick] "
                   "[--metrics-out FILE]\n";
      std::exit(2);
    }
  }
  if (opt.quick) {
    opt.scale = std::min(opt.scale, 0.002);
    opt.epochs = std::min<std::size_t>(opt.epochs, 2);
  }
  if (opt.threads.empty()) {
    const std::size_t hw = std::max<unsigned>(std::thread::hardware_concurrency(), 1);
    opt.threads = {1, 2, 4};
    if (std::find(opt.threads.begin(), opt.threads.end(), hw) ==
        opt.threads.end()) {
      opt.threads.push_back(hw);
    }
  }
  return opt;
}

core::DgcnnConfig model_config(std::size_t num_classes) {
  core::DgcnnConfig config;
  config.num_classes = num_classes;
  config.pooling = core::PoolingType::SortPooling;
  config.remaining = core::RemainingLayer::Conv1D;
  config.graph_conv_channels = {32, 32, 32};
  config.hidden_dim = 64;
  config.dropout_rate = 0.1;
  return config;
}

SweepPoint run_point(const data::Dataset& corpus,
                     const std::vector<std::size_t>& train_idx,
                     const std::vector<std::size_t>& val_idx,
                     const Options& opt, std::size_t threads) {
  core::TrainOptions train;
  train.epochs = opt.epochs;
  train.batch_size = 16;
  train.learning_rate = 3e-3;
  train.seed = opt.seed;
  train.threads = threads;

  util::Rng rng(opt.seed);
  core::DgcnnModel model(model_config(corpus.num_families()), rng, 16);
  util::Timer timer;
  const core::TrainResult result =
      core::train_model(model, corpus, train_idx, val_idx, train);
  SweepPoint point;
  point.threads = threads;
  point.seconds = timer.seconds();
  point.epoch_seconds = point.seconds / static_cast<double>(opt.epochs);
  point.graphs_per_second =
      point.seconds > 0.0
          ? static_cast<double>(opt.epochs * train_idx.size()) / point.seconds
          : 0.0;
  for (const core::EpochStats& e : result.history) {
    point.train_loss_history.push_back(e.train_loss);
  }
  return point;
}

// Naive ikj matmul: the kernel the tiled GEMM replaced.
tensor::Tensor naive_matmul(const tensor::Tensor& a, const tensor::Tensor& b) {
  const std::size_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  tensor::Tensor out = tensor::Tensor::zeros({m, n});
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t kk = 0; kk < k; ++kk) {
      const double av = a[i * k + kk];
      for (std::size_t j = 0; j < n; ++j) out[i * n + j] += av * b[kk * n + j];
    }
  }
  return out;
}

tensor::Tensor random_matrix(std::size_t rows, std::size_t cols,
                             std::uint64_t seed) {
  util::Rng rng(seed);
  tensor::Tensor t({rows, cols});
  for (std::size_t i = 0; i < t.size(); ++i) t[i] = rng.uniform(-1.0, 1.0);
  return t;
}

template <typename F>
double time_us(std::size_t reps, F&& f) {
  f();  // warm-up (also keeps the first-touch page faults out of the timing)
  util::Timer timer;
  for (std::size_t r = 0; r < reps; ++r) f();
  return timer.seconds() * 1e6 / static_cast<double>(reps);
}

/// Times two kernels against each other drift-robustly: alternates
/// reps-sized blocks of each and keeps the best block per side. Scheduler
/// noise on a busy core only ever slows a block down, so min-of-blocks
/// converges on true throughput, and interleaving means slow drift (thermal,
/// a background task) hits both sides equally instead of biasing whichever
/// ran second. The gate below compares thin (~1.1x) margins; sequential
/// single-shot timing flakes on exactly those.
template <typename FA, typename FB>
std::pair<double, double> time_us_interleaved(std::size_t reps,
                                              std::size_t blocks, FA&& fa,
                                              FB&& fb) {
  fa();
  fb();  // warm-up both (first-touch page faults, branch history)
  double best_a = std::numeric_limits<double>::infinity();
  double best_b = std::numeric_limits<double>::infinity();
  for (std::size_t blk = 0; blk < blocks; ++blk) {
    best_a = std::min(best_a, time_us(reps, fa));
    best_b = std::min(best_b, time_us(reps, fb));
  }
  return {best_a, best_b};
}

std::vector<GemmPoint> run_gemm_micro(bool quick) {
  struct Case {
    const char* name;
    std::size_t m, k, n;
  };
  // Shapes from the actual backward paths: graph-conv dW (n_vertices x
  // channels), linear dW, and a larger square stress case.
  const Case cases[] = {{"graphconv_dw", 96, 32, 32},
                        {"linear_dw", 64, 128, 64},
                        {"square", 128, 128, 128}};
  const std::size_t reps = quick ? 20 : 100;
  const std::size_t blocks = quick ? 5 : 8;
  std::vector<GemmPoint> points;
  std::uint64_t seed = 100;
  for (const Case& c : cases) {
    const tensor::Tensor a = random_matrix(c.m, c.k, seed++);
    const tensor::Tensor b = random_matrix(c.k, c.n, seed++);
    GemmPoint nn;
    nn.name = std::string(c.name) + "_nn";
    nn.m = c.m; nn.k = c.k; nn.n = c.n;
    tensor::Tensor out;
    std::tie(nn.tiled_us, nn.reference_us) = time_us_interleaved(
        reps, blocks, [&] { tensor::matmul_into(out, a, b); },
        [&] { naive_matmul(a, b); });
    nn.speedup = nn.tiled_us > 0.0 ? nn.reference_us / nn.tiled_us : 0.0;
    points.push_back(nn);

    // Transpose-free A^T B vs materializing the transpose first.
    const tensor::Tensor at = random_matrix(c.k, c.m, seed++);
    GemmPoint tn;
    tn.name = std::string(c.name) + "_tn";
    tn.m = c.m; tn.k = c.k; tn.n = c.n;
    std::tie(tn.tiled_us, tn.reference_us) = time_us_interleaved(
        reps, blocks, [&] { tensor::matmul_tn_into(out, at, b); },
        [&] { tensor::matmul(tensor::transpose(at), b); });
    tn.speedup = tn.tiled_us > 0.0 ? tn.reference_us / tn.tiled_us : 0.0;
    points.push_back(tn);
  }
  return points;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse(argc, argv);
  if (!opt.metrics_out.empty()) magic::obs::set_enabled(true);
  const unsigned hardware = std::thread::hardware_concurrency();
  const char* simd_level = tensor::simd::level_name(tensor::simd::active_level());
  std::cout << "bench_train_throughput: training sweep (epochs=" << opt.epochs
            << ", hardware_concurrency=" << hardware
            << ", simd=" << simd_level << ")\n";

  util::ThreadPool pool;
  util::Timer setup;
  data::Dataset corpus = data::yancfg_like_corpus(opt.scale, opt.seed, pool);
  std::vector<std::size_t> train_idx, val_idx;
  for (std::size_t i = 0; i < corpus.size(); ++i) {
    (i % 8 == 0 ? val_idx : train_idx).push_back(i);
  }
  std::cout << "corpus: " << corpus.size() << " graphs (" << train_idx.size()
            << " train / " << val_idx.size() << " val) in "
            << util::format_fixed(setup.seconds(), 1) << "s\n\n";

  std::vector<SweepPoint> points;
  util::Table table({"Threads", "Total (s)", "Epoch (s)", "Graphs/s", "vs 1T"});
  double base_gps = 0.0;
  for (std::size_t threads : opt.threads) {
    const SweepPoint p = run_point(corpus, train_idx, val_idx, opt, threads);
    if (p.threads == 1) base_gps = p.graphs_per_second;
    table.add_row({std::to_string(p.threads),
                   util::format_fixed(p.seconds, 2),
                   util::format_fixed(p.epoch_seconds, 2),
                   util::format_fixed(p.graphs_per_second, 1),
                   base_gps > 0.0
                       ? util::format_fixed(p.graphs_per_second / base_gps, 2) + "x"
                       : "-"});
    points.push_back(p);
  }
  table.print(std::cout);

  // Determinism check: the fixed-order reduction promises a bitwise
  // identical loss trajectory at every thread count.
  bool deterministic = true;
  for (const SweepPoint& p : points) {
    if (p.train_loss_history != points.front().train_loss_history) {
      deterministic = false;
    }
  }
  std::cout << "\nloss history bitwise identical across thread counts: "
            << (deterministic ? "yes" : "NO -- DETERMINISM BUG") << "\n";

  double speedup4 = 0.0;
  for (const SweepPoint& p : points) {
    if (p.threads == 4 && base_gps > 0.0) {
      speedup4 = p.graphs_per_second / base_gps;
    }
  }
  if (speedup4 > 0.0) {
    std::cout << "speedup (4 threads vs 1): "
              << util::format_fixed(speedup4, 2) << "x\n";
  }

  std::cout << "\nGEMM microbenchmark (dispatched vs reference, simd="
            << simd_level << "):\n";
  const std::vector<GemmPoint> gemm = run_gemm_micro(opt.quick);
  util::Table gtable({"Kernel", "Shape", "Tiled (us)", "Reference (us)", "Speedup"});
  bool gemm_gate_ok = true;
  for (const GemmPoint& g : gemm) {
    if (g.speedup < 1.0) gemm_gate_ok = false;
    gtable.add_row({g.name,
                    std::to_string(g.m) + "x" + std::to_string(g.k) + "x" +
                        std::to_string(g.n),
                    util::format_fixed(g.tiled_us, 1),
                    util::format_fixed(g.reference_us, 1),
                    util::format_fixed(g.speedup, 2) + "x"});
  }
  gtable.print(std::cout);
  if (!gemm_gate_ok) {
    std::cout << "GEMM GATE FAILED: a kernel is slower than its reference "
                 "(speedup < 1.0x)\n";
  }

  std::ofstream out(opt.out);
  out << "{\"bench\":\"train_throughput\",\"epochs\":" << opt.epochs
      << ",\"train_graphs\":" << train_idx.size()
      << ",\"hardware_concurrency\":" << hardware
      << ",\"seed\":" << opt.seed
      << ",\"simd_level\":\"" << simd_level << "\""
      << ",\"deterministic_across_threads\":" << (deterministic ? "true" : "false")
      << ",\"gemm_gate_ok\":" << (gemm_gate_ok ? "true" : "false")
      << ",\"speedup_4t\":" << speedup4 << ",\"sweep\":[";
  for (std::size_t i = 0; i < points.size(); ++i) {
    if (i != 0) out << ",";
    out << "{\"threads\":" << points[i].threads
        << ",\"seconds\":" << points[i].seconds
        << ",\"epoch_seconds\":" << points[i].epoch_seconds
        << ",\"graphs_per_second\":" << points[i].graphs_per_second << "}";
  }
  out << "],\"gemm\":[";
  for (std::size_t i = 0; i < gemm.size(); ++i) {
    if (i != 0) out << ",";
    out << "{\"kernel\":\"" << gemm[i].name << "\",\"m\":" << gemm[i].m
        << ",\"k\":" << gemm[i].k << ",\"n\":" << gemm[i].n
        << ",\"tiled_us\":" << gemm[i].tiled_us
        << ",\"reference_us\":" << gemm[i].reference_us
        << ",\"speedup\":" << gemm[i].speedup << "}";
  }
  out << "]}\n";
  std::cout << "wrote " << opt.out << "\n";

  if (!opt.metrics_out.empty()) {
    std::ofstream metrics(opt.metrics_out);
    metrics << obs::MetricsRegistry::global().snapshot_json() << "\n";
    std::cout << "wrote " << opt.metrics_out << "\n";
  }
  if (!deterministic) return 1;
  return gemm_gate_ok ? 0 : 3;
}
