// corpus_pack: build, convert and inspect packed mmap corpora
// (data/corpus_file.hpp).
//
// Usage:
//   corpus_pack --generate yancfg|mskcfg --out FILE.mgc
//               [--scale S] [--seed X] [--threads N]
//       Generates a synthetic corpus through the full pipeline and packs it.
//
//   corpus_pack --pack TEXT_CORPUS --out FILE.mgc
//       Converts a text-format corpus (acfg/serialization.hpp) to the
//       packed format. The text format carries no family-name table, so
//       families are named family0..familyK after the label range.
//
//   corpus_pack --info FILE.mgc
//       Maps and validates the file, then prints the header summary,
//       family table and per-sample aggregates. A tampered or truncated
//       file fails validation here (exit 1) — this doubles as an integrity
//       check for corpus artifacts.

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "acfg/serialization.hpp"
#include "data/corpus.hpp"
#include "data/corpus_file.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace {

using namespace magic;

[[noreturn]] void usage() {
  std::cerr
      << "usage: corpus_pack --generate yancfg|mskcfg --out FILE.mgc\n"
      << "                   [--scale S] [--seed X] [--threads N]\n"
      << "       corpus_pack --pack TEXT_CORPUS --out FILE.mgc\n"
      << "       corpus_pack --info FILE.mgc\n";
  std::exit(2);
}

int info(const std::string& path) {
  util::Timer timer;
  data::PackedCorpus corpus(path);
  const double open_ms = timer.millis();

  std::cout << path << ": " << corpus.size() << " samples, "
            << corpus.family_names().size() << " families, "
            << corpus.channels() << " channels, " << corpus.file_bytes()
            << " bytes (validated in " << util::format_fixed(open_ms, 1)
            << " ms)\n\n";

  std::vector<std::size_t> counts(corpus.family_names().size(), 0);
  std::size_t vertices = 0, edges = 0, max_vertices = 0;
  for (std::size_t i = 0; i < corpus.size(); ++i) {
    const data::PackedCorpus::SampleView v = corpus.view(i);
    if (v.label >= 0 && static_cast<std::size_t>(v.label) < counts.size()) {
      ++counts[static_cast<std::size_t>(v.label)];
    }
    vertices += v.vertices;
    edges += v.edges;
    max_vertices = std::max(max_vertices, v.vertices);
  }

  util::Table table({"Family", "Samples"});
  for (std::size_t f = 0; f < counts.size(); ++f) {
    table.add_row({corpus.family_names()[f], std::to_string(counts[f])});
  }
  table.print(std::cout);
  const double n = corpus.size() > 0 ? static_cast<double>(corpus.size()) : 1.0;
  std::cout << "\nmean vertices " << util::format_fixed(
                   static_cast<double>(vertices) / n, 1)
            << ", mean edges " << util::format_fixed(
                   static_cast<double>(edges) / n, 1)
            << ", max vertices " << max_vertices << "\n";
  if (corpus.size() > 0) {
    std::cout << "sample 0 content hash: "
              << corpus.view(0).content_hash.to_hex() << "\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string generate, pack_path, info_path, out_path;
  double scale = 0.004;
  std::uint64_t seed = 13;
  std::size_t threads = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage();
      return argv[++i];
    };
    if (arg == "--generate") generate = next();
    else if (arg == "--pack") pack_path = next();
    else if (arg == "--info") info_path = next();
    else if (arg == "--out") out_path = next();
    else if (arg == "--scale") scale = std::stod(next());
    else if (arg == "--seed") seed = std::stoull(next());
    else if (arg == "--threads") threads = std::stoul(next());
    else usage();
  }
  const int modes = (!generate.empty()) + (!pack_path.empty()) + (!info_path.empty());
  if (modes != 1) usage();

  try {
    if (!info_path.empty()) return info(info_path);
    if (out_path.empty()) usage();

    data::Dataset corpus;
    if (!generate.empty()) {
      util::ThreadPool pool(threads);
      util::Timer timer;
      if (generate == "yancfg") {
        corpus = data::yancfg_like_corpus(scale, seed, pool);
      } else if (generate == "mskcfg") {
        corpus = data::mskcfg_like_corpus(scale, seed, pool);
      } else {
        usage();
      }
      std::cout << "generated " << corpus.size() << " samples in "
                << util::format_fixed(timer.seconds(), 1) << "s\n";
    } else {
      util::Timer timer;
      corpus.samples = acfg::load_corpus(pack_path);
      int max_label = -1;
      for (const acfg::Acfg& sample : corpus.samples) {
        max_label = std::max(max_label, sample.label);
      }
      for (int f = 0; f <= max_label; ++f) {
        corpus.family_names.push_back("family" + std::to_string(f));
      }
      std::cout << "parsed " << corpus.size() << " samples from " << pack_path
                << " in " << util::format_fixed(timer.seconds(), 1) << "s\n";
    }

    util::Timer timer;
    data::pack_corpus(corpus, out_path);
    const data::PackedCorpus check(out_path);  // self-verify what we wrote
    std::cout << "packed " << check.size() << " samples ("
              << check.file_bytes() << " bytes) to " << out_path << " in "
              << util::format_fixed(timer.millis(), 1) << " ms\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "corpus_pack: " << e.what() << "\n";
    return 1;
  }
}
