// explain_verdict: gradient-based attribution of a classification.
//
// Trains a small model, classifies a sample, then shows which basic blocks
// and which Table I attribute channels pushed the model toward its verdict
// — the triage view an analyst would want next to "this is Kelihos".
//
// Run: ./explain_verdict

#include <algorithm>
#include <iostream>
#include <numeric>

#include "acfg/attributes.hpp"
#include "acfg/extractor.hpp"
#include "data/corpus.hpp"
#include "data/program_generator.hpp"
#include "magic/classifier.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"

int main() {
  using namespace magic;

  std::cout << "training a classifier on a small MSKCFG-style corpus...\n";
  util::ThreadPool pool;
  data::Dataset corpus = data::mskcfg_like_corpus(0.01, /*seed=*/5, pool);

  core::DgcnnConfig config;
  config.graph_conv_channels = {32, 32};
  core::TrainOptions train;
  train.epochs = 16;
  train.learning_rate = 3e-3;
  train.balance_families = true;
  core::MagicClassifier clf(config, train, /*seed=*/17);
  clf.fit(corpus, 0.15);

  // A fresh sample from the Gatak profile (long string-op heavy blocks:
  // its signature should light up the saliency view).
  data::ProgramGenerator gen(data::mskcfg_family_specs()[8], util::Rng(99));
  acfg::Acfg sample = acfg::extract_acfg_from_listing(gen.generate_listing());

  core::Explanation ex = clf.explain(sample);
  std::cout << "\nverdict: " << ex.prediction.family_name << " (p="
            << util::format_fixed(ex.prediction.probabilities[ex.prediction.family_index], 3)
            << ") over " << sample.num_vertices() << " basic blocks\n\n";

  // Top-5 most influential basic blocks.
  std::vector<std::size_t> order(ex.vertex_saliency.size());
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return ex.vertex_saliency[a] > ex.vertex_saliency[b];
  });
  util::Table blocks({"Block", "Saliency", "#Inst", "Arith", "Junk-ish (mov+arith)",
                      "Out-deg"});
  for (std::size_t r = 0; r < std::min<std::size_t>(5, order.size()); ++r) {
    const std::size_t v = order[r];
    auto attr = [&](std::size_t c) {
      return sample.attributes[v * acfg::kNumChannels + c];
    };
    blocks.add_row({std::to_string(v),
                    util::format_fixed(ex.vertex_saliency[v], 4),
                    std::to_string(static_cast<long>(attr(acfg::kTotalInsts))),
                    std::to_string(static_cast<long>(attr(acfg::kArithmeticInsts))),
                    std::to_string(static_cast<long>(attr(acfg::kMovInsts) +
                                                     attr(acfg::kArithmeticInsts))),
                    std::to_string(static_cast<long>(attr(acfg::kOffspring)))});
  }
  std::cout << "most influential basic blocks:\n";
  blocks.print(std::cout);

  // Channel attribution (which Table I attributes mattered).
  std::vector<std::size_t> channel_order(ex.channel_saliency.size());
  std::iota(channel_order.begin(), channel_order.end(), 0u);
  std::sort(channel_order.begin(), channel_order.end(), [&](std::size_t a, std::size_t b) {
    return ex.channel_saliency[a] > ex.channel_saliency[b];
  });
  util::Table channels({"Attribute (Table I)", "Saliency share"});
  for (std::size_t c : channel_order) {
    channels.add_row({std::string(acfg::channel_name(c)),
                      util::format_fixed(ex.channel_saliency[c], 4)});
  }
  std::cout << "\nattribute-channel attribution:\n";
  channels.print(std::cout);
  return 0;
}
