// Quickstart: the whole MAGIC pipeline in one file.
//
//  1. disassembled listing  ->  CFG   (two-pass builder, §IV-A)
//  2. CFG                   ->  ACFG  (Table I block attributes)
//  3. labelled ACFG corpus  ->  DGCNN training
//  4. unknown listing       ->  family prediction
//
// Run: ./quickstart

#include <iostream>

#include "acfg/attributes.hpp"
#include "acfg/extractor.hpp"
#include "cfg/cfg_builder.hpp"
#include "data/corpus.hpp"
#include "data/program_generator.hpp"
#include "magic/classifier.hpp"

int main() {
  using namespace magic;

  // --- 1+2: one sample through the front end --------------------------------
  const char* listing =
      "; a tiny if/else with a loop\n"
      "401000 push ebp\n"
      "401001 mov ebp, esp\n"
      "401003 mov ecx, 10\n"
      "401008 cmp ecx, 0\n"
      "40100b jz 0x401015\n"
      "40100d add eax, ecx\n"
      "40100f dec ecx\n"
      "401011 jmp 0x401008\n"
      "401015 pop ebp\n"
      "401016 ret\n";

  cfg::ControlFlowGraph graph = cfg::CfgBuilder::build_from_listing(listing);
  std::cout << "CFG: " << graph.num_blocks() << " basic blocks, "
            << graph.num_edges() << " edges\n";

  acfg::Acfg sample = acfg::extract_acfg(graph);
  std::cout << "ACFG: " << sample.num_vertices() << " vertices x "
            << sample.num_channels() << " attribute channels (Table I)\n";
  for (std::size_t c = 0; c < acfg::kNumChannels; ++c) {
    double total = 0.0;
    for (std::size_t v = 0; v < sample.num_vertices(); ++v) {
      total += sample.attributes[v * acfg::kNumChannels + c];
    }
    std::cout << "  " << acfg::channel_name(c) << ": " << total << "\n";
  }

  // --- 3: train a classifier on a small synthetic corpus --------------------
  std::cout << "\ngenerating a small 9-family corpus and training DGCNN...\n";
  util::ThreadPool pool;
  data::Dataset corpus = data::mskcfg_like_corpus(0.004, /*seed=*/42, pool);
  std::cout << "corpus: " << corpus.size() << " samples, "
            << corpus.num_families() << " families\n";

  core::DgcnnConfig config;  // defaults: AdaptivePooling, (32,32,32,32)
  config.graph_conv_channels = {32, 32};
  core::TrainOptions train;
  train.epochs = 6;
  train.learning_rate = 1e-3;
  core::MagicClassifier classifier(config, train, /*seed=*/7);
  core::TrainResult result = classifier.fit(corpus, /*holdout_fraction=*/0.15);
  std::cout << "trained " << result.history.size() << " epochs; best validation "
            << "loss " << result.best_validation_loss << " at epoch "
            << result.best_epoch << "\n";

  // --- 4: classify unknown samples ------------------------------------------
  data::ProgramGenerator unknown(data::mskcfg_family_specs()[2], util::Rng(9));
  for (int i = 0; i < 3; ++i) {
    core::Prediction p = classifier.predict_listing(unknown.generate_listing());
    std::cout << "unknown sample " << i << " -> " << p.family_name
              << " (p=" << p.probabilities[p.family_index] << ")\n";
  }
  std::cout << "(samples were drawn from the Kelihos_ver3 profile)\n";
  return 0;
}
