// dataset_builder: generate, persist and reload ACFG corpora.
//
// The YANCFG corpus of the paper ships as pre-extracted CFGs; this tool
// produces the equivalent artifact for the synthetic corpora so that
// experiments can run on frozen datasets instead of regenerating.
//
// Usage:
//   ./dataset_builder mskcfg out.acfg [scale] [seed]
//   ./dataset_builder yancfg out.acfg [scale] [seed]
//   ./dataset_builder stats in.acfg      # print statistics of a saved corpus

#include <iostream>
#include <string>

#include "acfg/serialization.hpp"
#include "data/corpus.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

using namespace magic;

void print_stats(const std::vector<acfg::Acfg>& corpus,
                 const std::vector<std::string>& family_names) {
  std::vector<std::size_t> counts(family_names.size(), 0);
  std::size_t total_vertices = 0, total_edges = 0, max_vertices = 0;
  for (const auto& a : corpus) {
    if (a.label >= 0 && static_cast<std::size_t>(a.label) < counts.size()) {
      ++counts[static_cast<std::size_t>(a.label)];
    }
    total_vertices += a.num_vertices();
    total_edges += a.num_edges();
    max_vertices = std::max(max_vertices, a.num_vertices());
  }
  util::Table table({"Family", "Samples"});
  for (std::size_t f = 0; f < family_names.size(); ++f) {
    table.add_row({family_names[f], std::to_string(counts[f])});
  }
  table.print(std::cout);
  std::cout << "\n" << corpus.size() << " ACFGs; mean "
            << util::format_fixed(
                   static_cast<double>(total_vertices) /
                       static_cast<double>(std::max<std::size_t>(1, corpus.size())),
                   1)
            << " vertices, mean "
            << util::format_fixed(
                   static_cast<double>(total_edges) /
                       static_cast<double>(std::max<std::size_t>(1, corpus.size())),
                   1)
            << " edges, largest graph " << max_vertices << " vertices\n";
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) {
    std::cerr << "usage: dataset_builder {mskcfg|yancfg} out.acfg [scale] [seed]\n"
              << "       dataset_builder stats in.acfg\n";
    return 2;
  }
  const std::string mode = argv[1];
  const std::string path = argv[2];

  if (mode == "stats") {
    const auto corpus = acfg::load_corpus(path);
    // Family names are not stored in the corpus file; derive generic ones.
    int max_label = -1;
    for (const auto& a : corpus) max_label = std::max(max_label, a.label);
    std::vector<std::string> names;
    for (int f = 0; f <= max_label; ++f) names.push_back("family" + std::to_string(f));
    // Recover real names from sample ids when present ("Name/123").
    for (const auto& a : corpus) {
      const auto slash = a.id.find('/');
      if (slash != std::string::npos && a.label >= 0) {
        names[static_cast<std::size_t>(a.label)] = a.id.substr(0, slash);
      }
    }
    print_stats(corpus, names);
    return 0;
  }

  const double scale = argc > 3 ? std::stod(argv[3]) : 0.01;
  const std::uint64_t seed = argc > 4 ? std::stoull(argv[4]) : 2019;

  util::ThreadPool pool;
  util::Timer timer;
  data::Dataset dataset;
  if (mode == "mskcfg") {
    dataset = data::mskcfg_like_corpus(scale, seed, pool);
  } else if (mode == "yancfg") {
    dataset = data::yancfg_like_corpus(scale, seed, pool);
  } else {
    std::cerr << "unknown corpus '" << mode << "'\n";
    return 2;
  }
  std::cout << "generated " << dataset.size() << " ACFGs in "
            << util::format_fixed(timer.seconds(), 1) << "s\n";
  print_stats(dataset.samples, dataset.family_names);

  timer.reset();
  acfg::save_corpus(path, dataset.samples);
  std::cout << "\nsaved to " << path << " in " << util::format_fixed(timer.seconds(), 1)
            << "s; reload with: dataset_builder stats " << path << "\n";
  return 0;
}
