// cfg_explorer: inspect what the MAGIC front end extracts from a listing.
//
// Usage:
//   ./cfg_explorer file.asm      # analyze a disassembly listing file
//   ./cfg_explorer --demo        # analyze a generated demo sample
//   ./cfg_explorer file.asm --dot  # also print Graphviz DOT
//
// Prints the basic blocks, their Table I attribute vectors, edge structure
// and whole-graph statistics — the exact representation the classifier
// consumes.

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "acfg/attributes.hpp"
#include "acfg/extractor.hpp"
#include "asmx/parser.hpp"
#include "asmx/tagging.hpp"
#include "cfg/cfg_builder.hpp"
#include "cfg/graph_algo.hpp"
#include "data/corpus.hpp"
#include "data/program_generator.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace magic;

  std::string listing;
  bool dot = false;
  std::string source = "--demo";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--dot") dot = true;
    else source = arg;
  }
  if (source == "--demo") {
    data::ProgramGenerator gen(data::mskcfg_family_specs()[0], util::Rng(4));
    listing = gen.generate_listing();
    std::cout << "analyzing a generated Ramnit-profile demo sample\n\n";
  } else {
    std::ifstream in(source);
    if (!in) {
      std::cerr << "cannot open " << source << "\n";
      return 1;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    listing = buffer.str();
    std::cout << "analyzing " << source << "\n\n";
  }

  // Stage the pipeline explicitly to surface diagnostics.
  asmx::ParseResult parsed = asmx::parse_listing(listing);
  std::cout << "parsed " << parsed.program.instructions.size() << " instructions";
  if (!parsed.diagnostics.empty()) {
    std::cout << " (" << parsed.diagnostics.size() << " diagnostics)";
    for (const auto& diag : parsed.diagnostics) {
      std::cout << "\n  line " << diag.line << ": " << diag.message;
    }
  }
  std::cout << "\n";

  asmx::TaggingPass tagger;
  tagger.run(parsed.program);
  std::cout << "tagging pass: " << tagger.unresolved_targets()
            << " unresolved branch/call targets (external imports)\n";

  cfg::CfgBuilder builder;
  cfg::ControlFlowGraph graph = builder.connect_blocks(parsed.program);
  const auto adj = graph.adjacency();
  const auto deg = cfg::degree_stats(adj);
  std::cout << "CFG: " << graph.num_blocks() << " blocks, " << graph.num_edges()
            << " edges, mean out-degree " << util::format_fixed(deg.mean, 2)
            << ", max " << deg.max << "\n";
  std::cout << "weakly connected components: "
            << cfg::weakly_connected_components(adj)
            << ", SCCs: " << cfg::strongly_connected_components(adj)
            << ", loops (back edges): " << cfg::back_edges(adj).size()
            << ", depth from entry: "
            << cfg::dag_depth_from(adj, graph.entry() == cfg::kInvalidBlock
                                            ? 0
                                            : graph.entry())
            << "\n\n";

  acfg::Acfg acfg = acfg::extract_acfg(graph);
  util::Table table({"Block", "Addr", "#Inst", "Arith", "Mov", "Cmp", "Call",
                     "Xfer", "Term", "Const", "Out-deg"});
  const std::size_t shown = std::min<std::size_t>(acfg.num_vertices(), 20);
  for (std::size_t i = 0; i < shown; ++i) {
    auto attr = [&](std::size_t c) {
      return acfg.attributes[i * acfg::kNumChannels + c];
    };
    std::ostringstream addr;
    addr << "0x" << std::hex << graph.block(i).start_addr;
    table.add_row({std::to_string(i), addr.str(),
                   std::to_string(static_cast<long>(attr(acfg::kTotalInsts))),
                   std::to_string(static_cast<long>(attr(acfg::kArithmeticInsts))),
                   std::to_string(static_cast<long>(attr(acfg::kMovInsts))),
                   std::to_string(static_cast<long>(attr(acfg::kCompareInsts))),
                   std::to_string(static_cast<long>(attr(acfg::kCallInsts))),
                   std::to_string(static_cast<long>(attr(acfg::kTransferInsts))),
                   std::to_string(static_cast<long>(attr(acfg::kTerminationInsts))),
                   std::to_string(static_cast<long>(attr(acfg::kNumericConstants))),
                   std::to_string(static_cast<long>(attr(acfg::kOffspring)))});
  }
  table.print(std::cout);
  if (acfg.num_vertices() > shown) {
    std::cout << "... (" << acfg.num_vertices() - shown << " more blocks)\n";
  }

  if (dot) {
    std::cout << "\n" << graph.to_dot();
  }
  return 0;
}
